#include "common/event_queue.hh"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace cais
{

namespace
{

constexpr Cycle noCycle = ~0ull;

EventQueue::SchedulerKind
kindFromEnv()
{
    if (const char *env = std::getenv("CAIS_EVENTQ")) {
        if (std::strcmp(env, "heap") == 0)
            return EventQueue::SchedulerKind::heap;
        if (*env != '\0' && std::strcmp(env, "bucketed") != 0)
            warn("CAIS_EVENTQ=%s not recognized; using bucketed", env);
    }
    return EventQueue::SchedulerKind::bucketed;
}

} // namespace

// cais-lint: allow(D4) -- per-thread shard binding, see event_queue.hh
thread_local ShardCtx *EventQueue::tlsCtx = nullptr;

EventQueue::EventQueue() : EventQueue(kindFromEnv()) {}

EventQueue::EventQueue(SchedulerKind kind) : mode(kind)
{
    if (mode == SchedulerKind::bucketed)
        buckets.resize(nearWindow);
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead != nilIdx) {
        std::uint32_t idx = freeHead;
        freeHead = slotAt(idx).next;
        return idx;
    }
    auto base = static_cast<std::uint32_t>(chunks.size() << chunkShift);
    chunks.push_back(std::make_unique<Slot[]>(chunkSlots));
    // Thread all but the first new slot onto the freelist, lowest
    // index on top so allocation order stays cache-friendly.
    for (std::size_t i = chunkSlots - 1; i >= 1; --i) {
        slotAt(base + static_cast<std::uint32_t>(i)).next = freeHead;
        freeHead = base + static_cast<std::uint32_t>(i);
    }
    return base;
}

void
EventQueue::markOccupied(std::size_t idx)
{
    occupied[idx >> 6] |= 1ull << (idx & 63);
}

void
EventQueue::clearOccupied(std::size_t idx)
{
    occupied[idx >> 6] &= ~(1ull << (idx & 63));
}

std::size_t
EventQueue::nextOccupied(Cycle from) const
{
    // Ring order starting at `from`'s bucket equals cycle order
    // because all in-ring cycles lie in [curTick, curTick + window).
    std::size_t start = static_cast<std::size_t>(from & bucketMask);
    std::size_t word = start >> 6;
    std::uint64_t bits = occupied[word] & (~0ull << (start & 63));
    for (std::size_t i = 0; i <= bitmapWords; ++i) {
        if (bits)
            return (word << 6) + static_cast<std::size_t>(
                                     std::countr_zero(bits));
        word = (word + 1) % bitmapWords;
        bits = occupied[word];
    }
    panic("event ring bitmap empty with nearCount=%zu", nearCount);
}

void
EventQueue::insertSlot(Cycle when, std::uint64_t seq,
                       std::uint32_t src_exec, std::uint32_t src_call,
                       Callback cb)
{
    std::uint32_t idx = allocSlot();
    Slot &s = slotAt(idx);
    s.when = when;
    s.seq = seq;
    s.next = nilIdx;
    s.srcExec = src_exec;
    s.srcCall = src_call;
    s.cb = std::move(cb);

    if (mode == SchedulerKind::bucketed && when - curTick < nearWindow) {
        std::size_t b = static_cast<std::size_t>(when & bucketMask);
        Fifo &f = buckets[b];
        if (f.head == nilIdx) {
            f.head = f.tail = idx;
            markOccupied(b);
        } else {
            slotAt(f.tail).next = idx;
            f.tail = idx;
        }
        ++nearCount;
    } else {
        heap.push(HeapKey{when, seq, idx});
    }
}

void
EventQueue::schedule(Cycle when, Callback cb)
{
    if (shardGroup) {
        if (ShardCtx *ctx = tlsCtx) {
            shardRoute(*ctx, when, std::move(cb));
            return;
        }
        // Main thread outside any window (pre-run assembly, barrier
        // epilogues): call order *is* sequential order, so a class-0
        // vseq straight off the shared counter reproduces it.
        if (when < curTick)
            panic("scheduling event in the past: %llu < %llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(curTick));
        insertSlot(when, shardGroup->nextVseq++, 0, 0, std::move(cb));
        return;
    }
    if (when < curTick)
        panic("scheduling event in the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick));
    insertSlot(when, nextSeq++, 0, 0, std::move(cb));
}

void
EventQueue::shardRoute(ShardCtx &ctx, Cycle when, Callback cb)
{
    // Every schedule call consumes a call index, whether it inserts
    // locally or defers to the barrier: the indices order the calls
    // of one event when the barrier reconstructs sequential order.
    std::uint32_t call = ctx.curCall++;

    if (this == ctx.q) {
        if (when < curTick)
            panic("scheduling event in the past: %llu < %llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(curTick));
        if (when < ctx.windowEnd) {
            insertSlot(when, inWindowSeqBit | ctx.localSeq++,
                       ctx.curExec, call, std::move(cb));
            return;
        }
        // Own-queue but beyond the window: it may tie with other
        // shards' deliveries at the same cycle, so its vseq must come
        // from the globally sorted barrier merge like theirs.
    } else {
        if (shardGroup != ctx.q->shardGroup)
            panic("schedule crosses shard groups (queues of different "
                  "systems?)");
        if (when < ctx.windowEnd)
            panic("cross-shard event at %llu lands inside the open "
                  "window ending at %llu: conservative lookahead "
                  "violated (zero-latency cross-domain coupling; see "
                  "cais-lint rule D8)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(ctx.windowEnd));
    }
    ctx.outbox.push_back(
        ShardOutRec{this, when, ctx.curExec, call, std::move(cb)});
}

void
EventQueue::scheduleExternal(Cycle when, std::uint64_t vseq, Callback cb)
{
    if (when < curTick)
        panic("barrier insertion in the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick));
    insertSlot(when, vseq, 0, 0, std::move(cb));
}

void
EventQueue::scheduleAfter(Cycle delta, Callback cb)
{
    if (shardGroup) {
        ShardCtx *ctx = tlsCtx;
        if (ctx && ctx->q != this)
            panic("scheduleAfter on another shard's queue: its clock "
                  "is concurrent; compute an absolute cycle from the "
                  "caller's own queue instead");
    }
    schedule(curTick + delta, std::move(cb));
}

Cycle
EventQueue::nextWhen() const
{
    Cycle th = heap.empty() ? noCycle : heap.top().when;
    if (nearCount == 0)
        return th;
    const Fifo &f = buckets[nextOccupied(curTick)];
    Cycle tb = slotAt(f.head).when;
    return tb < th ? tb : th;
}

std::uint32_t
EventQueue::popNext()
{
    Cycle th = heap.empty() ? noCycle : heap.top().when;
    Fifo *f = nullptr;
    std::size_t bi = 0;
    Cycle tb = noCycle;
    std::uint64_t sb = 0;
    if (nearCount != 0) {
        bi = nextOccupied(curTick);
        f = &buckets[bi];
        const Slot &front = slotAt(f->head);
        tb = front.when;
        sb = front.seq;
    }

    // Earliest (when, seq) wins; bucket entries are FIFO in seq and
    // the heap breaks ties by seq, so comparing the two fronts gives
    // the global minimum even when a cycle's events are split across
    // ring and heap (scheduled near vs. scheduled far, then reached).
    bool from_heap = th != noCycle &&
                     (tb == noCycle || th < tb ||
                      (th == tb && heap.top().seq < sb));

    if (from_heap) {
        std::uint32_t idx = heap.top().idx;
        heap.pop();
        return idx;
    }

    std::uint32_t idx = f->head;
    f->head = slotAt(idx).next;
    if (f->head == nilIdx) {
        f->tail = nilIdx;
        clearOccupied(bi);
    }
    --nearCount;
    return idx;
}

bool
EventQueue::runOne()
{
    if (empty())
        return false;
    std::uint32_t idx = popNext();
    // The slot is detached from both the bucket/heap and the
    // freelist, and chunk addresses are stable, so the callback runs
    // in place even if it schedules further events.
    Slot &s = slotAt(idx);
    if (s.when >= nextObsAt)
        runObserver(s.when);
    curTick = s.when;
    ++numExecuted;
    if (shardGroup) {
        if (ShardCtx *ctx = tlsCtx) {
            ctx->curExec =
                static_cast<std::uint32_t>(ctx->execLog.size());
            ctx->curCall = 0;
            ctx->execLog.push_back(
                ShardExecRec{s.when, s.seq, s.srcExec, s.srcCall});
        }
    }
    s.cb();
    s.cb.reset();
    releaseSlot(idx);
    return true;
}

std::uint64_t
EventQueue::runUntil(Cycle limit)
{
    std::uint64_t n = 0;
    while (!empty() && nextWhen() <= limit) {
        runOne();
        ++n;
    }
    // Simulated time reaches the limit even when later events remain
    // pending.
    if (curTick < limit)
        curTick = limit;
    return n;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    if (n == max_events && !empty())
        warn("event budget (%llu) exhausted with %zu events pending",
             static_cast<unsigned long long>(max_events), size());
    return n;
}

void
EventQueue::setPeriodicObserver(Cycle period,
                                std::function<void(Cycle)> fn)
{
    if (period == 0 || !fn) {
        obsPeriod = 0;
        nextObsAt = obsDisabled;
        observer = nullptr;
        return;
    }
    obsPeriod = period;
    observer = std::move(fn);
    // First sample strictly after the current time, aligned to the
    // period grid.
    nextObsAt = (curTick / period + 1) * period;
}

void
EventQueue::runObserver(Cycle when)
{
    // Outside the event stream: numExecuted and curTick untouched
    // until the caller proceeds with the event that triggered us.
    while (nextObsAt <= when) {
        observer(nextObsAt);
        nextObsAt += obsPeriod;
    }
}

void
EventQueue::reset()
{
    // Dropping the chunks runs every pending InlineEvent's destructor.
    chunks.clear();
    freeHead = nilIdx;
    for (Fifo &f : buckets)
        f = Fifo{};
    for (std::uint64_t &w : occupied)
        w = 0;
    nearCount = 0;
    heap = decltype(heap)();
    curTick = 0;
    nextSeq = 0;
    numExecuted = 0;
    if (obsPeriod != 0)
        nextObsAt = obsPeriod; // re-align the sample grid to t=0
}

} // namespace cais
