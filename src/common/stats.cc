#include "common/stats.hh"

#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace cais
{

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_)
{
    if (bins == 0 || hi_ <= lo_)
        panic("invalid histogram range/bins");
    binWidth = (hi - lo) / static_cast<double>(bins);
    counts.assign(bins + 2, 0);
}

void
Histogram::sample(double v)
{
    acc.sample(v);
    std::size_t idx;
    if (v < lo) {
        idx = 0;
    } else if (v >= hi) {
        idx = counts.size() - 1;
    } else {
        idx = 1 + static_cast<std::size_t>((v - lo) / binWidth);
        if (idx > counts.size() - 2)
            idx = counts.size() - 2;
    }
    ++counts[idx];
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    acc.reset();
}

double
Histogram::percentile(double frac) const
{
    if (acc.count() == 0)
        return lo; // documented zero-sample value: the range start
    // Clamp into [0, 1]; written so a NaN frac falls through to 0
    // (std::clamp propagates NaN).
    if (!(frac >= 0.0))
        frac = 0.0;
    if (frac > 1.0)
        frac = 1.0;
    double target = frac * static_cast<double>(acc.count());
    double seen = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        double next = seen + static_cast<double>(counts[i]);
        if (next >= target) {
            if (i == 0)
                return lo;
            if (i == counts.size() - 1)
                return hi;
            // Interpolate within the bin.
            double bin_lo = lo + static_cast<double>(i - 1) * binWidth;
            double f = counts[i]
                ? (target - seen) / static_cast<double>(counts[i]) : 0.0;
            return bin_lo + f * binWidth;
        }
        seen = next;
    }
    return hi;
}

void
TimeSeries::grow(std::size_t need)
{
    // Amortized doubling: a monotonically advancing clock would
    // otherwise trigger a linear-time resize on nearly every record.
    if (need > bins.capacity())
        bins.reserve(std::max(need, bins.capacity() * 2));
    bins.resize(need, 0.0);
}

void
TimeSeries::record(Cycle when, double amount)
{
    std::size_t idx = static_cast<std::size_t>(when / width);
    if (idx >= bins.size())
        grow(idx + 1);
    bins[idx] += amount;
}

void
TimeSeries::recordInterval(Cycle start, Cycle end, double amount)
{
    if (end <= start) {
        record(start, amount);
        return;
    }
    double span = static_cast<double>(end - start);
    std::size_t first = static_cast<std::size_t>(start / width);
    std::size_t last = static_cast<std::size_t>((end - 1) / width);
    if (last >= bins.size())
        grow(last + 1);
    for (std::size_t i = first; i <= last; ++i) {
        Cycle bin_lo = static_cast<Cycle>(i) * width;
        Cycle bin_hi = bin_lo + width;
        Cycle seg_lo = std::max(start, bin_lo);
        Cycle seg_hi = std::min(end, bin_hi);
        bins[i] += amount * static_cast<double>(seg_hi - seg_lo) / span;
    }
}

void
TimeSeries::reset()
{
    bins.clear();
}

double
TimeSeries::binValue(std::size_t i) const
{
    return i < bins.size() ? bins[i] : 0.0;
}

double
TimeSeries::meanOver(std::size_t first, std::size_t last) const
{
    if (last <= first)
        return 0.0;
    double s = 0.0;
    for (std::size_t i = first; i < last; ++i)
        s += binValue(i);
    return s / static_cast<double>(last - first);
}

void
StatRegistry::add(const std::string &name, const Counter *c)
{
    slots[name] = Slot{c, [](const void *p) {
        return static_cast<double>(static_cast<const Counter *>(p)->value());
    }};
}

void
StatRegistry::add(const std::string &name, const Accumulator *a)
{
    slots[name] = Slot{a, [](const void *p) {
        return static_cast<const Accumulator *>(p)->mean();
    }};
}

std::map<std::string, double>
StatRegistry::snapshot() const
{
    std::map<std::string, double> out;
    for (const auto &[name, slot] : slots)
        out[name] = slot.read(slot.obj);
    return out;
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : snapshot())
        os << name << " = " << value << "\n";
    return os.str();
}

} // namespace cais
