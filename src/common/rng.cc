#include "common/rng.hh"

#include <cmath>

namespace cais
{

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

void
Rng::seed(std::uint64_t s)
{
    state = s ? s : 0x9e3779b97f4a7c15ull;
    haveSpare = false;
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545f4914f6cdd1dull;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::normal(double mean, double stddev)
{
    if (haveSpare) {
        haveSpare = false;
        return mean + stddev * spare;
    }
    // Box-Muller transform.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare = r * std::sin(theta);
    haveSpare = true;
    return mean + stddev * r * std::cos(theta);
}

} // namespace cais
