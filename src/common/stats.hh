/**
 * @file
 * Lightweight statistics package: scalar counters, accumulators,
 * histograms and binned time series, plus a registry for dumping.
 *
 * Components own their stats by value; a StatRegistry only holds
 * non-owning pointers for end-of-run reporting.
 */

#ifndef CAIS_COMMON_STATS_HH
#define CAIS_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cais
{

/** Monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { val += n; }
    void reset() { val = 0; }
    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/**
 * Running mean/min/max accumulator over double samples.
 *
 * Zero-sample behaviour is defined and NaN-free: mean(), min() and
 * max() all return 0.0 (not +/-infinity, not NaN) until the first
 * sample arrives, so downstream report writers can serialize any
 * accumulator without guarding.
 */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        ++n;
        total += v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    void
    reset()
    {
        n = 0;
        total = 0.0;
        lo = std::numeric_limits<double>::infinity();
        hi = -std::numeric_limits<double>::infinity();
    }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bin histogram over a [lo, hi) range with overflow bins. */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 10) {}

    Histogram(double lo, double hi, std::size_t bins);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return acc.count(); }
    double mean() const { return acc.mean(); }
    double min() const { return acc.min(); }
    double max() const { return acc.max(); }

    /**
     * Value below which @p frac of samples fall (bin-interpolated).
     *
     * Defined, NaN-free edge cases: with zero samples the range start
     * `lo` is returned; @p frac is clamped into [0, 1], and a NaN
     * @p frac behaves like 0. Samples in the underflow/overflow bins
     * resolve to `lo` / `hi` (the bins carry no interior position).
     */
    double percentile(double frac) const;

    const std::vector<std::uint64_t> &binCounts() const { return counts; }

  private:
    double lo;
    double hi;
    double binWidth;
    std::vector<std::uint64_t> counts; // [under, bins..., over]
    Accumulator acc;
};

/**
 * Time series that accumulates a quantity (e.g. bytes transferred)
 * into fixed-width time bins, for utilization-over-time plots.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Cycle bin_width = 1000) : width(bin_width) {}

    /** Add @p amount at time @p when. */
    void record(Cycle when, double amount);

    /**
     * Spread @p amount uniformly over [start, end). Used for packet
     * serialization intervals that straddle bin boundaries.
     */
    void recordInterval(Cycle start, Cycle end, double amount);

    void reset();

    Cycle binWidth() const { return width; }
    std::size_t numBins() const { return bins.size(); }

    /** Accumulated amount in bin @p i (0 beyond the recorded range). */
    double binValue(std::size_t i) const;

    /** Mean of binValue over bins [first, last). */
    double meanOver(std::size_t first, std::size_t last) const;

    const std::vector<double> &data() const { return bins; }

  private:
    /** Extend bins to @p need entries with amortized-doubling growth. */
    void grow(std::size_t need);

    Cycle width;
    std::vector<double> bins;
};

/** Non-owning registry mapping names to scalar stat readers. */
class StatRegistry
{
  public:
    using Reader = double (*)(const void *);

    /** Register a counter under @p name. */
    void add(const std::string &name, const Counter *c);

    /** Register an accumulator's mean under @p name. */
    void add(const std::string &name, const Accumulator *a);

    /** Read every registered stat. */
    std::map<std::string, double> snapshot() const;

    /** Render "name = value" lines. */
    std::string dump() const;

  private:
    struct Slot
    {
        const void *obj;
        Reader read;
    };

    std::map<std::string, Slot> slots;
};

} // namespace cais

#endif // CAIS_COMMON_STATS_HH
