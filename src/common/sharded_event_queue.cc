#include "common/sharded_event_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace cais
{

namespace
{
constexpr Cycle noCycle = ~0ull;
} // namespace

ShardedEventQueue::ShardedEventQueue(EventQueue &primary, int shards,
                                     Cycle lookahead)
    : la(lookahead)
{
    if (shards < 2)
        panic("ShardedEventQueue needs >= 2 shards (got %d); use the "
              "plain EventQueue for sequential runs",
              shards);
    if (la == 0)
        panic("ShardedEventQueue needs a non-zero lookahead");

    queues.push_back(&primary);
    for (int s = 1; s < shards; ++s) {
        // Same scheduler kind as the primary so CAIS_EVENTQ applies
        // uniformly.
        owned.push_back(std::make_unique<EventQueue>(primary.kind()));
        queues.push_back(owned.back().get());
    }
    for (int s = 0; s < shards; ++s) {
        ctxs.push_back(std::make_unique<ShardCtx>());
        ctxs.back()->q = queues[static_cast<std::size_t>(s)];
        queues[static_cast<std::size_t>(s)]->bindShardGroup(&group);
    }
    workers.reserve(static_cast<std::size_t>(shards - 1));
    for (int s = 1; s < shards; ++s)
        workers.emplace_back([this, s] { workerMain(s); });
}

ShardedEventQueue::~ShardedEventQueue()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cvStart.notify_all();
    for (std::thread &t : workers)
        t.join();
}

Cycle
ShardedEventQueue::minNextWhen() const
{
    Cycle m = noCycle;
    for (const EventQueue *q : queues) {
        if (q->empty())
            continue;
        // nextWhen is private; empty()/size() plus the drain loop
        // below only need the bucket/heap fronts, which peekNextWhen
        // exposes.
        Cycle w = q->peekNextWhen();
        if (w < m)
            m = w;
    }
    return m;
}

void
ShardedEventQueue::drainWindow(int s)
{
    ShardCtx &c = *ctxs[static_cast<std::size_t>(s)];
    EventQueue &q = *queues[static_cast<std::size_t>(s)];
    EventQueue::setThreadShardCtx(&c);
    while (!q.empty() && q.peekNextWhen() < c.windowEnd)
        q.runOne();
    EventQueue::setThreadShardCtx(nullptr);
}

void
ShardedEventQueue::workerMain(int s)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu);
            cvStart.wait(lk, [&] {
                return stopping || windowGen != seen;
            });
            if (stopping)
                return;
            seen = windowGen;
        }
        drainWindow(s);
        {
            std::lock_guard<std::mutex> lk(mu);
            if (--pendingWorkers == 0)
                cvDone.notify_one();
        }
    }
}

bool
ShardedEventQueue::execLess(int sa, std::uint32_t ea, int sb,
                            std::uint32_t eb) const
{
    if (sa == sb && ea == eb)
        return false;
    const ShardExecRec &ra =
        ctxs[static_cast<std::size_t>(sa)]->execLog[ea];
    const ShardExecRec &rb =
        ctxs[static_cast<std::size_t>(sb)]->execLog[eb];
    if (ra.when != rb.when)
        return ra.when < rb.when;
    bool in_a = (ra.seq & EventQueue::inWindowSeqBit) != 0;
    bool in_b = (rb.seq & EventQueue::inWindowSeqBit) != 0;
    // At equal cycles class-0 ran first sequentially: its schedule
    // call happened in an earlier window, i.e. at a smaller seq.
    if (in_a != in_b)
        return !in_a;
    if (!in_a)
        return ra.seq < rb.seq; // global vseqs order directly
    if (sa == sb)
        return ea < eb; // one shard's window order is sequential order
    // Class-1 events on different shards: ordered by the sequential
    // order of the schedule calls that created them. Recursion
    // terminates — each step moves to a strictly earlier exec-log
    // entry and bottoms out at class-0 parents or differing cycles.
    return callLess(sa, ra.srcExec, ra.srcCall, sb, rb.srcExec,
                    rb.srcCall);
}

bool
ShardedEventQueue::callLess(int sa, std::uint32_t ea, std::uint32_t ca,
                            int sb, std::uint32_t eb,
                            std::uint32_t cb) const
{
    if (sa == sb && ea == eb)
        return ca < cb; // same event: program order of its calls
    // Events are atomic: all calls of the earlier event precede all
    // calls of the later one.
    return execLess(sa, ea, sb, eb);
}

void
ShardedEventQueue::mergeOutboxes()
{
    mergeOrder.clear();
    for (std::size_t s = 0; s < ctxs.size(); ++s)
        for (std::size_t i = 0; i < ctxs[s]->outbox.size(); ++i)
            mergeOrder.push_back(OutRef{static_cast<int>(s),
                                        static_cast<std::uint32_t>(i)});

    std::sort(mergeOrder.begin(), mergeOrder.end(),
              [this](const OutRef &a, const OutRef &b) {
        const ShardOutRec &ra =
            ctxs[static_cast<std::size_t>(a.shard)]->outbox[a.rec];
        const ShardOutRec &rb =
            ctxs[static_cast<std::size_t>(b.shard)]->outbox[b.rec];
        return callLess(a.shard, ra.srcExec, ra.srcCall, b.shard,
                        rb.srcExec, rb.srcCall);
    });

    // Globally sorted order implies ascending vseq per destination,
    // which scheduleExternal requires.
    for (const OutRef &ref : mergeOrder) {
        ShardOutRec &r =
            ctxs[static_cast<std::size_t>(ref.shard)]->outbox[ref.rec];
        r.dst->scheduleExternal(r.when, group.nextVseq++,
                                std::move(r.cb));
    }

    for (auto &c : ctxs) {
        c->outbox.clear();
        c->execLog.clear();
    }
}

std::uint64_t
ShardedEventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t base = executed();
    for (;;) {
        Cycle m = minNextWhen();
        if (m == noCycle)
            break;
        if (executed() - base >= max_events) {
            warn("event budget (%llu) exhausted with %zu events "
                 "pending",
                 static_cast<unsigned long long>(max_events), size());
            break;
        }

        // Same lazy catch-up as the sequential scheduler: every
        // sample point at or below the next event's cycle fires now,
        // observing the state after all strictly-earlier events.
        while (nextObsAt <= m) {
            observer(nextObsAt);
            nextObsAt += obsPeriod;
        }

        Cycle wend = m + la;
        if (wend < m)
            wend = noCycle; // overflow clamp
        // No event at or past a sample point may run before the
        // observer fires for it.
        if (nextObsAt < wend)
            wend = nextObsAt;

        for (auto &c : ctxs) {
            c->windowEnd = wend;
            c->safeHorizon = m;
        }

        {
            std::lock_guard<std::mutex> lk(mu);
            pendingWorkers = static_cast<int>(workers.size());
            ++windowGen;
        }
        cvStart.notify_all();

        drainWindow(0);

        {
            std::unique_lock<std::mutex> lk(mu);
            cvDone.wait(lk, [&] { return pendingWorkers == 0; });
        }

        mergeOutboxes();
    }
    return executed() - base;
}

std::uint64_t
ShardedEventQueue::executed() const
{
    std::uint64_t n = 0;
    for (const EventQueue *q : queues)
        n += q->executed();
    return n;
}

std::size_t
ShardedEventQueue::size() const
{
    std::size_t n = 0;
    for (const EventQueue *q : queues)
        n += q->size();
    return n;
}

Cycle
ShardedEventQueue::now() const
{
    Cycle t = 0;
    for (const EventQueue *q : queues)
        t = std::max(t, q->now());
    return t;
}

void
ShardedEventQueue::setPeriodicObserver(Cycle period,
                                       std::function<void(Cycle)> fn)
{
    if (period == 0 || !fn) {
        obsPeriod = 0;
        nextObsAt = obsDisabled;
        observer = nullptr;
        return;
    }
    obsPeriod = period;
    observer = std::move(fn);
    nextObsAt = (now() / period + 1) * period;
}

} // namespace cais
