#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cais
{

// --- Writer ----------------------------------------------------------

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return;
    }
    if (!needComma.empty()) {
        if (needComma.back())
            out += ',';
        needComma.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out += '{';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    needComma.pop_back();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out += '[';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    needComma.pop_back();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    out += '"';
    out += escape(k);
    out += "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out += '"';
    out += escape(v);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v))
        v = 0.0; // keep the document valid JSON
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out += "null";
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\r':
            r += "\\r";
            break;
          case '\t':
            r += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                r += buf;
            } else {
                r += c;
            }
        }
    }
    return r;
}

// --- Parser ----------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &k) const
{
    for (const auto &[name, v] : members)
        if (name == k)
            return &v;
    return nullptr;
}

double
JsonValue::getNumber(const std::string &k, double def) const
{
    const JsonValue *v = find(k);
    return v && v->isNumber() ? v->numVal : def;
}

std::string
JsonValue::getString(const std::string &k, const std::string &def) const
{
    const JsonValue *v = find(k);
    return v && v->isString() ? v->strVal : def;
}

namespace
{

/** Recursive-descent JSON parser over a flat character buffer. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        error = "offset " + std::to_string(pos) + ": " + msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    // The writer only emits \u for control chars;
                    // represent others as '?' rather than UTF-8
                    // encode (metric names are ASCII).
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &v)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            v.kind = JsonValue::Kind::object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string k;
                if (!parseString(k))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                v.members.emplace_back(std::move(k),
                                       std::move(member));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect('}');
            }
        }
        if (c == '[') {
            ++pos;
            v.kind = JsonValue::Kind::array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue elem;
                if (!parseValue(elem))
                    return false;
                v.elems.push_back(std::move(elem));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect(']');
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::string;
            return parseString(v.strVal);
        }
        if (text.compare(pos, 4, "true") == 0) {
            v.kind = JsonValue::Kind::boolean;
            v.boolVal = true;
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            v.kind = JsonValue::Kind::boolean;
            v.boolVal = false;
            pos += 5;
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            v.kind = JsonValue::Kind::null;
            pos += 4;
            return true;
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            std::size_t start = pos;
            if (c == '-')
                ++pos;
            while (pos < text.size() &&
                   (std::isdigit(static_cast<unsigned char>(
                        text[pos])) ||
                    text[pos] == '.' || text[pos] == 'e' ||
                    text[pos] == 'E' || text[pos] == '+' ||
                    text[pos] == '-'))
                ++pos;
            v.kind = JsonValue::Kind::number;
            v.numVal = std::strtod(text.c_str() + start, nullptr);
            return true;
        }
        return fail("unexpected character");
    }
};

} // namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string &error)
{
    // Reset the node: parseValue appends members/elements, so a
    // reused JsonValue would otherwise merge two documents.
    out = JsonValue{};
    Parser p(text);
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        error = "offset " + std::to_string(p.pos) +
                ": trailing content after document";
        return false;
    }
    return true;
}

} // namespace cais
