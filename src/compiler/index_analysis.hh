/**
 * @file
 * Static index analysis (Sec. III-B.1, Fig. 8a): inspects the address
 * expression of each memory access to decide whether it is
 * GPU-invariant — i.e. the expression contains no GPU-id term, so TBs
 * with equal blockIdx on different GPUs touch identical addresses —
 * and therefore whether the access is eligible for in-switch merging.
 */

#ifndef CAIS_COMPILER_INDEX_ANALYSIS_HH
#define CAIS_COMPILER_INDEX_ANALYSIS_HH

#include <vector>

#include "compiler/kernel_ir.hh"

namespace cais
{

/** Classification of one memory access. */
struct AccessClass
{
    bool gpuInvariant = false; ///< no gpuId term in the index
    bool remote = false;       ///< may touch a peer GPU's memory
    bool mergeableLoad = false;
    bool mergeableReduction = false;

    bool mergeable() const
    {
        return mergeableLoad || mergeableReduction;
    }
};

/** Classify a single access. */
AccessClass classifyAccess(const MemInstr &instr);

/** Classify every access of a kernel, in order. */
std::vector<AccessClass> analyzeKernel(const IrKernel &k);

/** True if any access of the kernel is mergeable. */
bool hasMergeableAccess(const IrKernel &k);

} // namespace cais

#endif // CAIS_COMPILER_INDEX_ANALYSIS_HH
