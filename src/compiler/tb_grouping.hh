/**
 * @file
 * Compiler-guided TB grouping (Sec. III-B.1): thread blocks on
 * different GPUs that share a blockIdx — and hence, for GPU-invariant
 * accesses, touch identical data — are collected into logical TB
 * groups. Group metadata is attached to the kernel launch
 * configuration and drives the runtime's pre-launch/pre-access
 * synchronization and the switch's merge tracking.
 */

#ifndef CAIS_COMPILER_TB_GROUPING_HH
#define CAIS_COMPILER_TB_GROUPING_HH

#include <vector>

#include "common/types.hh"
#include "compiler/kernel_ir.hh"

namespace cais
{

/** Grouping decision for one kernel. */
struct TbGroupingPlan
{
    /** Whether any TB of the kernel was grouped. */
    bool grouped = false;

    /** Group id per linear blockIdx (invalidId when ungrouped). */
    std::vector<GroupId> groupOfTb;

    /** First group id used (ids are firstGroup .. firstGroup+n-1). */
    GroupId firstGroup = invalidId;

    int numGroups = 0;
};

/**
 * Build TB groups for @p k. Every TB whose kernel contains at least
 * one mergeable access joins the group of its blockIdx; group ids are
 * allocated from @p first_group (the runtime keeps ids globally
 * unique across kernel launches).
 */
TbGroupingPlan groupTbs(const IrKernel &k, GroupId first_group);

} // namespace cais

#endif // CAIS_COMPILER_TB_GROUPING_HH
