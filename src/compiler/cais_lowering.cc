#include "compiler/cais_lowering.hh"

#include "compiler/index_analysis.hh"

namespace cais
{

LoweringResult
lowerToCais(const IrKernel &k, GroupId first_group)
{
    LoweringResult res;
    res.kernel = k;
    res.plan = groupTbs(k, first_group);

    if (!res.plan.grouped)
        return res;

    for (auto &a : res.kernel.accesses) {
        AccessClass c = classifyAccess(a);
        if (c.mergeableLoad && a.op == Opcode::ldGlobal) {
            a.op = Opcode::ldCais;
            a.caisFlag = true;
            ++res.numLowered;
        } else if (c.mergeableReduction && a.op == Opcode::redGlobal) {
            a.op = Opcode::redCais;
            a.caisFlag = true;
            ++res.numLowered;
        }
    }
    return res;
}

} // namespace cais
