/**
 * @file
 * JIT lowering pass (Sec. III-B.1): memory access instructions whose
 * index analysis marks them mergeable are replaced by their CAIS
 * variants (`ld.cais`, `red.cais`) with the 1-bit CAIS flag set, and
 * TB group metadata is produced for the launch configuration.
 */

#ifndef CAIS_COMPILER_CAIS_LOWERING_HH
#define CAIS_COMPILER_CAIS_LOWERING_HH

#include "compiler/kernel_ir.hh"
#include "compiler/tb_grouping.hh"

namespace cais
{

/** Output of the lowering pass. */
struct LoweringResult
{
    IrKernel kernel;    ///< rewritten kernel
    TbGroupingPlan plan;
    int numLowered = 0; ///< instructions rewritten to CAIS variants
};

/**
 * Lower @p k for compute-aware in-switch execution, allocating group
 * ids from @p first_group.
 */
LoweringResult lowerToCais(const IrKernel &k, GroupId first_group);

} // namespace cais

#endif // CAIS_COMPILER_CAIS_LOWERING_HH
