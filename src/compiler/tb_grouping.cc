#include "compiler/tb_grouping.hh"

#include "compiler/index_analysis.hh"

namespace cais
{

TbGroupingPlan
groupTbs(const IrKernel &k, GroupId first_group)
{
    TbGroupingPlan plan;
    int n = k.numTbs();
    plan.groupOfTb.assign(static_cast<std::size_t>(n), invalidId);
    if (!hasMergeableAccess(k))
        return plan;

    plan.grouped = true;
    plan.firstGroup = first_group;
    plan.numGroups = n;
    for (int tb = 0; tb < n; ++tb)
        plan.groupOfTb[static_cast<std::size_t>(tb)] = first_group + tb;
    return plan;
}

} // namespace cais
