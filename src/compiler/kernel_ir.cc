#include "compiler/kernel_ir.hh"

#include <sstream>

#include "common/log.hh"

namespace cais
{

void
IrKernel::validate() const
{
    if (gridX < 1 || gridY < 1)
        panic("kernel %s: bad grid %dx%d", name.c_str(), gridX, gridY);
    for (const auto &a : accesses)
        if (a.bytesPerTb == 0)
            panic("kernel %s: access with zero bytes", name.c_str());
}

std::string
IrKernel::str() const
{
    std::ostringstream os;
    os << name << " <<<" << gridX << "x" << gridY << ">>> ("
       << flopsPerTb << " FLOP/TB)\n";
    for (const auto &a : accesses)
        os << "  " << a.str() << "\n";
    return os.str();
}

} // namespace cais
