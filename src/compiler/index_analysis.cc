#include "compiler/index_analysis.hh"

namespace cais
{

AccessClass
classifyAccess(const MemInstr &instr)
{
    AccessClass c;
    c.gpuInvariant = instr.addr.gpuInvariant();
    c.remote = instr.remote;

    // Merging requires that all GPUs issue the *same* address: a
    // GPU-variant index produces per-GPU addresses the switch can
    // never coalesce. Only remote accesses reach the switch at all.
    bool candidate = c.remote && c.gpuInvariant;
    if (candidate && instr.op == Opcode::ldGlobal)
        c.mergeableLoad = true;
    if (candidate && instr.op == Opcode::redGlobal)
        c.mergeableReduction = true;
    // Already-lowered CAIS instructions stay mergeable.
    if (c.remote && instr.op == Opcode::ldCais)
        c.mergeableLoad = true;
    if (c.remote && instr.op == Opcode::redCais)
        c.mergeableReduction = true;
    return c;
}

std::vector<AccessClass>
analyzeKernel(const IrKernel &k)
{
    std::vector<AccessClass> out;
    out.reserve(k.accesses.size());
    for (const auto &a : k.accesses)
        out.push_back(classifyAccess(a));
    return out;
}

bool
hasMergeableAccess(const IrKernel &k)
{
    for (const auto &a : k.accesses)
        if (classifyAccess(a).mergeable())
            return true;
    return false;
}

} // namespace cais
