/**
 * @file
 * Miniature kernel IR consumed by the CAIS compiler passes.
 *
 * An IrKernel is the CUDA-to-PTX-stage view of one tensor-parallel
 * kernel: a 2-D grid plus the memory access instructions of a
 * representative thread block, with symbolic (affine) address
 * expressions. The static index analysis, TB grouping, and CAIS
 * lowering passes of Sec. III-B operate on this form; the workload
 * layer then expands the lowered kernel into concrete TbDescs.
 */

#ifndef CAIS_COMPILER_KERNEL_IR_HH
#define CAIS_COMPILER_KERNEL_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace cais
{

/** One kernel in compiler IR form. */
struct IrKernel
{
    std::string name;

    /** Grid dimensions (blockIdx.x in [0, gridX), .y in [0, gridY)). */
    int gridX = 1;
    int gridY = 1;

    /** Memory access instructions of a representative thread block. */
    std::vector<MemInstr> accesses;

    /** Arithmetic work per thread block (for cost modelling). */
    std::uint64_t flopsPerTb = 0;

    int numTbs() const { return gridX * gridY; }

    /** Linearized blockIdx. */
    static int
    linearTb(int bx, int by, int grid_x)
    {
        return by * grid_x + bx;
    }

    void validate() const;
    std::string str() const;
};

} // namespace cais

#endif // CAIS_COMPILER_KERNEL_IR_HH
