/**
 * @file
 * Round-robin arbiter, as used by NVSwitch port arbitration and by
 * CAIS's traffic control between load and reduction virtual channels
 * (Sec. III-C of the paper).
 */

#ifndef CAIS_NOC_ARBITER_HH
#define CAIS_NOC_ARBITER_HH

#include <functional>

#include "common/types.hh"

namespace cais
{

/** Stateful round-robin arbiter over a fixed number of requesters. */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int num_inputs);

    /**
     * Grant the next ready input after the previous grant.
     * @param ready predicate telling whether input i is requesting.
     * @return granted input index, or -1 if none ready.
     */
    int pick(const std::function<bool(int)> &ready);

    /** Number of inputs arbitrated over. */
    int inputs() const { return n; }

    /** Index that would be checked first on the next pick. */
    int cursor() const { return (last + 1) % n; }

  private:
    CAIS_OWNED_BY_DOMAIN(parent);

    int n;
    int last;
};

} // namespace cais

#endif // CAIS_NOC_ARBITER_HH
