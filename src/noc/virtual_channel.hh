/**
 * @file
 * Bounded FIFO buffer backing one virtual channel at a switch input
 * port.
 */

#ifndef CAIS_NOC_VIRTUAL_CHANNEL_HH
#define CAIS_NOC_VIRTUAL_CHANNEL_HH

#include <cstddef>
#include <deque>

#include "noc/packet.hh"

namespace cais
{

/** One virtual-channel buffer (packet-granularity, bounded depth). */
class VirtualChannel
{
  public:
    explicit VirtualChannel(std::size_t depth = 256) : maxDepth(depth) {}

    bool empty() const { return fifo.empty(); }
    bool full() const { return fifo.size() >= maxDepth; }
    std::size_t size() const { return fifo.size(); }
    std::size_t depth() const { return maxDepth; }

    /** Enqueue; the caller must have checked !full(). */
    void push(Packet &&pkt);

    /** Head packet; the caller must have checked !empty(). */
    Packet &front();
    const Packet &front() const;

    /** Pop and return the head packet. */
    Packet pop();

    /** Largest occupancy ever observed (for buffer-sizing studies). */
    std::size_t peakOccupancy() const { return peak; }

  private:
    CAIS_OWNED_BY_DOMAIN(parent);

    std::deque<Packet> fifo;
    std::size_t maxDepth;
    std::size_t peak = 0;
};

} // namespace cais

#endif // CAIS_NOC_VIRTUAL_CHANNEL_HH
