/**
 * @file
 * Unidirectional NVLink model with credit-based virtual-channel flow
 * control and a shared serializer.
 *
 * The sender side holds unbounded per-VC queues (upstream components
 * apply their own throttling); a packet may start serializing only
 * when the receiver-side VC buffer has a free slot (credit). The
 * serializer round-robins across eligible VCs. Link occupancy is
 * recorded into a TimeSeries for bandwidth-utilization studies
 * (Figs. 15/16 of the paper).
 */

#ifndef CAIS_NOC_CREDIT_LINK_HH
#define CAIS_NOC_CREDIT_LINK_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/intmath.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "noc/arbiter.hh"
#include "noc/packet.hh"

namespace cais
{

class CausalProfiler;
class CreditLink;

/** Anything that terminates a link: a switch input port or a GPU. */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;

    /**
     * Deliver a packet. The sink must eventually call
     * from->returnCredit(vc) to free the receive-buffer slot.
     */
    virtual void acceptPacket(Packet &&pkt, CreditLink *from, int vc) = 0;
};

/** One direction of an NVLink between a GPU and a switch. */
class CreditLink : public Probe
{
  public:
    CreditLink(EventQueue &eq, std::string name, double bytes_per_cycle,
               Cycle latency, int num_vcs, int vc_credits,
               Cycle util_bin_width);

    /**
     * Attach the receiving sink. @p tag is an opaque receiver-chosen
     * id (e.g. the switch input-port index) echoed by sinkTag(), so
     * sinks can recover which of their links a packet arrived on
     * without keying a container on the link's address.
     */
    void setSink(PacketSink *s, int tag = -1)
    {
        sink = s;
        tag_ = tag;
    }

    /** Tag registered by the sink, or -1 when none was set. */
    int sinkTag() const { return tag_; }

    /**
     * Under sharded execution (DESIGN.md §6f), bind the queue of the
     * shard the *sink* lives on. The link then runs split: sender
     * state (VC queues, serializer, credits, counters) stays on the
     * constructor queue, deliveries are scheduled onto the sink's
     * queue, and credit returns — which the sink issues from its own
     * shard — ride the barrier mailboxes back. Defaults to the
     * constructor queue (sequential, both ends co-located), which
     * keeps the historical single-queue behaviour bit-for-bit.
     */
    void setSinkQueue(EventQueue &q) { sinkEq = &q; }

    /** True when sender and sink live on different shards. */
    bool splitShards() const { return sinkEq != &eq; }

    /** Notified with the VC index whenever a packet starts the wire. */
    void setDequeueCallback(std::function<void(int)> cb);

    /**
     * Attach the causal profiler (DESIGN.md §6g); @p node is this
     * link's profile-graph node. Hooks stamp packet provenance at
     * send(), record queue-wait and wire-occupancy edges at issue,
     * and tag the delivery event as the downstream enabling cause.
     * Never schedules events: profiled runs are bit-identical.
     */
    void setProfiler(CausalProfiler *pr, std::uint64_t node)
    {
        prof = pr;
        profNode_ = node;
    }

    /** This link's profile-graph node (0 when unprofiled). */
    std::uint64_t profNode() const { return profNode_; }

    /** Enqueue a packet on its VC; serialization starts when eligible. */
    void send(Packet &&pkt);

    /**
     * Free one receive-buffer slot; the credit flies back upstream.
     * Credits freed for the same VC in the same cycle coalesce into
     * one arrival event (they ride the same reverse-channel beat).
     * Under split execution the sink's shard calls this, appending a
     * safeHorizon-trimmed cell and scheduling the arrival back onto
     * the sender's queue through the barrier mailbox.
     */
    CAIS_CROSS_SHARD_CHANNEL void returnCredit(int vc);

    double bytesPerCycle() const { return bw; }
    Cycle latencyCycles() const { return lat; }
    int numVcs() const { return static_cast<int>(queues.size()); }

    std::size_t queueLen(int vc) const { return queues[vc].size(); }
    std::size_t totalQueued() const;
    int credits(int vc) const { return creditCount[vc]; }

    const std::string &name() const { return linkName; }

    /** Wire bytes accumulated into time bins. */
    const TimeSeries &utilization() const { return util; }

    std::uint64_t totalWireBytes() const { return wireBytes.value(); }
    std::uint64_t totalPayloadBytes() const { return payloadBytes.value(); }
    std::uint64_t totalPackets() const { return packets.value(); }
    Cycle busyCycles() const { return busy; }

    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const override;

  private:
    CAIS_OWNED_BY_DOMAIN(sender);

    /** Try to start serializing the next eligible packet; split
     *  deliveries are scheduled onto the sink shard's queue. */
    CAIS_CROSS_SHARD_CHANNEL void tryIssue();

    EventQueue &eq;
    EventQueue *sinkEq; ///< == &eq unless split across shards
    std::string linkName;
    double bw;
    SerDivider serDiv;
    Cycle lat;

    std::vector<std::deque<Packet>> queues;
    std::vector<int> creditCount;

    /** In-flight credit batches per VC: (arrival cycle, count), one
     *  scheduled event per batch, ordered by arrival cycle. Under
     *  split execution both shards touch these cells: the sink shard
     *  appends/coalesces inside returnCredit (trimmed at the window's
     *  safeHorizon), the sender shard consumes arrived batches. */
    CAIS_SHARD_SHARED std::vector<std::deque<std::pair<Cycle, int>>>
        pendingCredits;

    RoundRobinArbiter arb;
    CausalProfiler *prof = nullptr;
    std::uint64_t profNode_ = 0;
    PacketSink *sink = nullptr;
    int tag_ = -1;
    std::function<void(int)> dequeueCb;

    std::size_t queuedTotal = 0;
    Cycle busyUntil = 0;
    bool wakeScheduled = false;

    TimeSeries util;
    Counter wireBytes;
    Counter payloadBytes;
    Counter packets;
    Cycle busy = 0;
};

} // namespace cais

#endif // CAIS_NOC_CREDIT_LINK_HH
