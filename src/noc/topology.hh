/**
 * @file
 * Fabric topology description for DGX-like systems: every GPU has one
 * up and one down link to every switch chip, replicating the
 * DGX-H100's 8-GPU / 4-NVSwitch arrangement by default. Per-GPU
 * injection bandwidth is split evenly across the switches.
 */

#ifndef CAIS_NOC_TOPOLOGY_HH
#define CAIS_NOC_TOPOLOGY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "noc/switch_chip.hh"

namespace cais
{

/** Parameters of the whole NVLink/NVSwitch fabric. */
struct FabricParams
{
    int numGpus = 8;
    int numSwitches = 4;

    /**
     * Per-GPU injection/ejection bandwidth per direction, in bytes
     * per cycle (== GB/s), aggregated over all switches. 450 matches
     * an H100's 900 GB/s bidirectional NVLink budget.
     */
    double perGpuBytesPerCycle = 450.0;

    /** One-way GPU<->switch propagation latency (250 ns per paper). */
    Cycle linkLatency = 250;

    /** Address interleave granularity for deterministic routing. */
    std::uint64_t interleaveBytes = 4096;

    /** Bin width for link-utilization time series. */
    Cycle utilBinWidth = 1000;

    /** Receive-buffer credits per VC (matches switch vcDepth). */
    int vcCredits = 256;

    SwitchParams sw;

    /** Per-link bandwidth in bytes/cycle for one GPU-switch pair. */
    double perLinkBytesPerCycle() const
    {
        return perGpuBytesPerCycle / static_cast<double>(numSwitches);
    }

    /** First inconsistency as a message, or "" when valid. */
    std::string validationError() const;

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;

    std::string str() const;
};

} // namespace cais

#endif // CAIS_NOC_TOPOLOGY_HH
