/**
 * @file
 * Fabric topology description. The default is the flat DGX-like
 * arrangement: every GPU has one up and one down link to every switch
 * chip (DGX-H100: 8 GPUs / 4 NVSwitches), with per-GPU injection
 * bandwidth split evenly across the switches.
 *
 * Multi-tier shapes add a second switch level: GPUs are grouped into
 * nodes, each node owns `railsPerGroup` leaf switches (rails), and
 * every leaf connects to every spine switch. Presets cover the paper's
 * DGX-H100 plus NVL72-class and rail-optimized multi-node fabrics.
 */

#ifndef CAIS_NOC_TOPOLOGY_HH
#define CAIS_NOC_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/switch_chip.hh"

namespace cais
{

/** Parameters of the whole NVLink/NVSwitch fabric. */
struct FabricParams
{
    CAIS_OWNED_BY_DOMAIN(config);

    int numGpus = 8;
    int numSwitches = 4;

    /**
     * Per-GPU injection/ejection bandwidth per direction, in bytes
     * per cycle (== GB/s), aggregated over all switches. 450 matches
     * an H100's 900 GB/s bidirectional NVLink budget.
     */
    double perGpuBytesPerCycle = 450.0;

    /** One-way GPU<->switch propagation latency (250 ns per paper). */
    Cycle linkLatency = 250;

    /** Address interleave granularity for deterministic routing. */
    std::uint64_t interleaveBytes = 4096;

    /** Bin width for link-utilization time series. */
    Cycle utilBinWidth = 1000;

    /** Receive-buffer credits per VC (matches switch vcDepth). */
    int vcCredits = 256;

    SwitchParams sw;

    // -- Tier description (multi-tier fabrics only) -------------------
    // numGroups GPU groups (nodes) x railsPerGroup leaf switches each,
    // plus numSpines spine switches. numSwitches must then equal
    // numGroups * railsPerGroup + numSpines. numSpines == 0 selects
    // the flat single-tier topology and ignores the other tier fields.

    int numGroups = 1;
    int railsPerGroup = 0;
    int numSpines = 0;

    /** Leaf<->spine link bandwidth in bytes/cycle; 0 derives a
     *  full-bisection value (group injection split over spines). */
    double tierLinkBytesPerCycle = 0.0;

    /** Leaf<->spine propagation latency; 0 inherits linkLatency. */
    Cycle tierLinkLatency = 0;

    bool multiTier() const { return numSpines > 0; }

    int numLeaves() const { return numGroups * railsPerGroup; }

    int gpusPerGroup() const
    {
        return numGroups > 0 ? numGpus / numGroups : numGpus;
    }

    /** Leaf switch index of (group, rail), group-major. */
    int leafIndex(int group, int rail) const
    {
        return group * railsPerGroup + rail;
    }

    /** Group that GPU @p g belongs to. */
    int groupOfGpu(int g) const
    {
        return multiTier() ? g / gpusPerGroup() : 0;
    }

    bool isSpineSwitch(int s) const
    {
        return multiTier() && s >= numLeaves();
    }

    /** Uplinks (and downlinks) each GPU has: its node's rails on a
     *  multi-tier fabric, every switch on the flat one. */
    int uplinksPerGpu() const
    {
        return multiTier() ? railsPerGroup : numSwitches;
    }

    /** Per-link bandwidth in bytes/cycle for one GPU-switch pair. */
    double perLinkBytesPerCycle() const
    {
        return perGpuBytesPerCycle /
               static_cast<double>(uplinksPerGpu());
    }

    /** Effective leaf<->spine link bandwidth (derived when 0). */
    double effectiveTierLinkBytesPerCycle() const
    {
        if (tierLinkBytesPerCycle > 0.0)
            return tierLinkBytesPerCycle;
        // Full bisection: a group's aggregate injection bandwidth,
        // divided over its rails' uplinks to the spines.
        return static_cast<double>(gpusPerGroup()) *
               perLinkBytesPerCycle() /
               static_cast<double>(numSpines > 0 ? numSpines : 1);
    }

    /** Effective leaf<->spine latency (inherits linkLatency when 0). */
    Cycle effectiveTierLinkLatency() const
    {
        return tierLinkLatency > 0 ? tierLinkLatency : linkLatency;
    }

    /** Named preset; aborts on an unknown name. */
    static FabricParams preset(const std::string &name);

    /** Named preset, or nullptr for unknown names (validation path). */
    static const FabricParams *findPreset(const std::string &name);

    /** All preset names, in a fixed order. */
    static std::vector<std::string> presetNames();

    /** Copy rescaled to @p gpus GPUs: flat shapes just change the GPU
     *  count; multi-tier shapes keep the per-group size and adjust
     *  numGroups (and numSwitches) to match. */
    FabricParams withGpus(int gpus) const;

    /** First inconsistency as a message, or "" when valid. */
    std::string validationError() const;

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;

    std::string str() const;
};

} // namespace cais

#endif // CAIS_NOC_TOPOLOGY_HH
