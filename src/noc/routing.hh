/**
 * @file
 * Deterministic routing for merging convergence (Sec. III-A.5).
 *
 * A lightweight hash on the request address (above the interleave
 * granularity) maps every request to a fixed switch, guaranteeing that
 * mergeable requests from different GPUs targeting the same address
 * are processed by the same merge unit. Group-sync traffic hashes the
 * group id the same way.
 *
 * On multi-tier fabrics the same hash composes across tiers: the rail
 * (leaf within a group) is the address hash modulo the rail count, and
 * the spine is a salted re-hash modulo the spine count — so all GPUs
 * still converge on one leaf per group and one spine fabric-wide.
 */

#ifndef CAIS_NOC_ROUTING_HH
#define CAIS_NOC_ROUTING_HH

#include <cstdint>

#include "common/types.hh"

namespace cais
{

/** Address/group to switch mapping shared by all GPUs. */
class DeterministicRouting
{
  public:
    DeterministicRouting(int num_switches, std::uint64_t interleave_bytes);

    /** Switch index (0-based) that owns @p addr. On multi-tier
     *  fabrics this is the rail index within a group. */
    SwitchId switchForAddr(Addr addr) const;

    /** Switch index that coordinates TB group @p g. */
    SwitchId switchForGroup(GroupId g) const;

    /** Spine index (0-based, out of @p num_spines) that owns @p addr:
     *  a salted re-hash, independent of the rail choice. */
    SwitchId spineForAddr(Addr addr, int num_spines) const;

    /** Spine index that coordinates TB group @p g. */
    SwitchId spineForGroup(GroupId g, int num_spines) const;

    int numSwitches() const { return switches; }
    std::uint64_t interleaveBytes() const { return interleave; }

    /** SplitMix64 finalizer; the "lightweight hash" of the paper. */
    static std::uint64_t mix64(std::uint64_t x);

  private:
    CAIS_OWNED_BY_DOMAIN(config);

    int switches;
    std::uint64_t interleave;
};

} // namespace cais

#endif // CAIS_NOC_ROUTING_HH
