#include "noc/virtual_channel.hh"

#include "common/log.hh"

namespace cais
{

void
VirtualChannel::push(Packet &&pkt)
{
    if (full())
        panic("VC overflow (depth %zu); credit protocol violated",
              maxDepth);
    fifo.push_back(std::move(pkt));
    if (fifo.size() > peak)
        peak = fifo.size();
}

Packet &
VirtualChannel::front()
{
    if (fifo.empty())
        panic("front() on empty VC");
    return fifo.front();
}

const Packet &
VirtualChannel::front() const
{
    if (fifo.empty())
        panic("front() on empty VC");
    return fifo.front();
}

Packet
VirtualChannel::pop()
{
    if (fifo.empty())
        panic("pop() on empty VC");
    Packet p = std::move(fifo.front());
    fifo.pop_front();
    return p;
}

} // namespace cais
