#include "noc/switch_chip.hh"

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

SwitchChip::SwitchChip(EventQueue &eq_, SwitchId id, int node_id,
                       int num_gpus, const SwitchParams &params)
    : eq(eq_), switchId(id), node(node_id), p(params),
      inPorts(static_cast<std::size_t>(num_gpus)),
      outPorts(static_cast<std::size_t>(num_gpus)),
      waiting(static_cast<std::size_t>(num_gpus),
              std::vector<std::vector<std::pair<int, int>>>(
                  static_cast<std::size_t>(params.numVcs)))
{
    for (auto &port : inPorts) {
        port.vcs.assign(static_cast<std::size_t>(p.numVcs),
                        VirtualChannel(static_cast<std::size_t>(p.vcDepth)));
        port.busy.assign(static_cast<std::size_t>(p.numVcs), false);
    }
}

void
SwitchChip::attachUplink(GpuId g, CreditLink *from_gpu)
{
    inPorts[static_cast<std::size_t>(g)].link = from_gpu;
    // The port index rides on the link as its sink tag; keying a map
    // on the link pointer would order ports by allocation address.
    from_gpu->setSink(this, g);
}

void
SwitchChip::attachDownlink(GpuId g, CreditLink *to_gpu)
{
    outPorts[static_cast<std::size_t>(g)] =
        std::make_unique<OutputPort>(to_gpu, p.outQueueDepth);
    outPorts[static_cast<std::size_t>(g)]->setSpaceCallback(
        [this, g](int vc) { onDownlinkSpace(g, vc); });
}

void
SwitchChip::acceptPacket(Packet &&pkt, CreditLink *from, int vc)
{
    int port = from->sinkTag();
    if (port < 0 || port >= numGpus() ||
        inPorts[static_cast<std::size_t>(port)].link != from)
        panic("switch %d: packet from unknown link", switchId);
    auto &in = inPorts[static_cast<std::size_t>(port)];
    if (prof)
        // Re-stamp as the ingress-arrival time (the send-side cause
        // in profT was consumed by the link's queue-wait edge); the
        // VC-arbitration edge at processHead covers [arrival, serve].
        pkt.profT = eq.now();
    in.vcs[static_cast<std::size_t>(vc)].push(std::move(pkt));
    if (!in.busy[static_cast<std::size_t>(vc)]) {
        in.busy[static_cast<std::size_t>(vc)] = true;
        scheduleProcess(port, vc, p.pipelineDelay);
    }
}

void
SwitchChip::scheduleProcess(int port, int vc, Cycle delay)
{
    eq.scheduleAfter(delay, [this, port, vc] { processHead(port, vc); });
}

void
SwitchChip::processHead(int port, int vc)
{
    auto &in = inPorts[static_cast<std::size_t>(port)];
    auto &buf = in.vcs[static_cast<std::size_t>(vc)];
    if (buf.empty()) {
        in.busy[static_cast<std::size_t>(vc)] = false;
        return;
    }

    Packet &head = buf.front();

    // VC-arbitration edge (recorded only when the head actually
    // leaves the buffer, so head-of-line parking folds into one
    // edge): the head sat in the ingress VC from arrival (profT)
    // until this service event. The in-link node stands for the
    // ingress port on the critical path; the scoped cause hands it
    // to everything this service triggers downstream.
    std::uint64_t in_node = prof ? in.link->profNode() : 0;

    if (handler && handler->wants(head)) {
        if (prof)
            prof->record(in_node, WaitClass::vcArbitration,
                         head.profT, eq.now(), in_node, head.profT);
        Packet pkt = buf.pop();
        in.link->returnCredit(vc);
        consumed.inc();
        {
            CausalProfiler::ScopedCause sc(prof, in_node, eq.now());
            handler->handlePacket(std::move(pkt));
        }
        scheduleProcess(port, vc, p.perPacketProcess);
        return;
    }

    // Plain unicast forward. Without a router the output port is the
    // destination GPU id (flat shape); a router maps remote or
    // switch-node destinations onto tier links.
    int dst = router ? router(head) : head.dst;
    if (dst < 0 || dst >= numPorts())
        panic("switch %d: cannot route packet type %s to node %d",
              switchId, packetTypeName(head.type), head.dst);

    auto &out = outPorts[static_cast<std::size_t>(dst)];
    if (!out->canAccept(head.vc)) {
        // Head-of-line block: park until the output VC drains. The VC
        // stays busy (no service event) and resumes via
        // onDownlinkSpace.
        waiting[static_cast<std::size_t>(dst)]
               [static_cast<std::size_t>(head.vc)]
                   .emplace_back(port, vc);
        return;
    }

    if (prof)
        prof->record(in_node, WaitClass::vcArbitration, head.profT,
                     eq.now(), in_node, head.profT);
    Packet pkt = buf.pop();
    in.link->returnCredit(vc);
    forwarded.inc();
    {
        CausalProfiler::ScopedCause sc(prof, in_node, eq.now());
        out->enqueue(std::move(pkt));
    }
    scheduleProcess(port, vc, p.perPacketProcess);
}

void
SwitchChip::onDownlinkSpace(GpuId g, int vc)
{
    auto &list = waiting[static_cast<std::size_t>(g)]
                        [static_cast<std::size_t>(vc)];
    if (list.empty())
        return;
    // Wake all parked heads; they re-check space in arrival order.
    auto parked = std::move(list);
    list.clear();
    for (auto [port, in_vc] : parked)
        scheduleProcess(port, in_vc, 0);
}

void
SwitchChip::sendToGpu(Packet &&pkt)
{
    int dst = router ? router(pkt) : pkt.dst;
    if (dst < 0 || dst >= numPorts())
        panic("switch %d: sendToGpu to bad node %d", switchId, pkt.dst);
    pkt.vc = policedVc(pkt.vc, p.unifiedDataVc);
    generated.inc();
    outPorts[static_cast<std::size_t>(dst)]->enqueueForced(std::move(pkt));
}

std::size_t
SwitchChip::downlinkQueue(GpuId g, VcClass vc) const
{
    return outPorts[static_cast<std::size_t>(g)]->link()->queueLen(
        static_cast<int>(vc));
}

std::size_t
SwitchChip::peakInputOccupancy() const
{
    std::size_t peak = 0;
    for (const auto &port : inPorts)
        for (const auto &vc : port.vcs)
            peak = std::max(peak, vc.peakOccupancy());
    return peak;
}

std::size_t
SwitchChip::inputOccupancy(int vc) const
{
    std::size_t n = 0;
    for (const auto &port : inPorts)
        if (vc >= 0 && vc < static_cast<int>(port.vcs.size()))
            n += port.vcs[static_cast<std::size_t>(vc)].size();
    return n;
}

void
SwitchChip::registerMetrics(MetricRegistry &reg,
                            const std::string &prefix) const
{
    reg.addCounter(prefix + ".forwarded", &forwarded);
    reg.addCounter(prefix + ".consumed", &consumed);
    reg.addCounter(prefix + ".generated", &generated);
    reg.addGaugeU64(prefix + ".peakInputVcOccupancy", [this] {
        return static_cast<std::uint64_t>(peakInputOccupancy());
    });
}

} // namespace cais
