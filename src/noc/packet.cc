#include "noc/packet.hh"

#include "common/log.hh"

namespace cais
{

VcClass
defaultVcClass(PacketType t)
{
    switch (t) {
      case PacketType::readReq:
      case PacketType::caisLoadReq:
      case PacketType::multimemLdReduceReq:
        return VcClass::request;
      case PacketType::readResp:
      case PacketType::caisLoadResp:
      case PacketType::multimemLdReduceResp:
        return VcClass::response;
      case PacketType::writeReq:
      case PacketType::multimemRed:
      case PacketType::caisRedReq:
      case PacketType::caisMergedWrite:
        return VcClass::reduction;
      case PacketType::multimemSt:
        return VcClass::multicast;
      case PacketType::groupSyncReq:
      case PacketType::groupSyncRelease:
        return VcClass::sync;
      case PacketType::writeAck:
      case PacketType::throttleHint:
        return VcClass::control;
      default:
        panic("bad packet type");
    }
}

const char *
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::readReq: return "readReq";
      case PacketType::readResp: return "readResp";
      case PacketType::writeReq: return "writeReq";
      case PacketType::writeAck: return "writeAck";
      case PacketType::multimemSt: return "multimem.st";
      case PacketType::multimemLdReduceReq: return "multimem.ld_reduce.req";
      case PacketType::multimemLdReduceResp:
        return "multimem.ld_reduce.resp";
      case PacketType::multimemRed: return "multimem.red";
      case PacketType::caisLoadReq: return "cais.load.req";
      case PacketType::caisLoadResp: return "cais.load.resp";
      case PacketType::caisRedReq: return "cais.red.req";
      case PacketType::caisMergedWrite: return "cais.merged.write";
      case PacketType::groupSyncReq: return "sync.req";
      case PacketType::groupSyncRelease: return "sync.release";
      case PacketType::throttleHint: return "throttle.hint";
      default: return "?";
    }
}

VcClass
policedVc(VcClass vc, bool unified_data_vc)
{
    if (!unified_data_vc)
        return vc;
    if (vc == VcClass::response || vc == VcClass::multicast ||
        vc == VcClass::reduction)
        return VcClass::reduction;
    return vc;
}

Packet
makePacket(PacketIdAllocator &ids, PacketType t, int src, int dst)
{
    Packet p;
    p.id = ids.next();
    p.type = t;
    p.vc = defaultVcClass(t);
    p.src = src;
    p.dst = dst;
    return p;
}

} // namespace cais
