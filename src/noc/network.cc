#include "noc/network.hh"

#include <algorithm>

#include "analysis/causal_profile.hh"
#include "common/log.hh"
#include "common/sharded_event_queue.hh"

namespace cais
{

namespace
{

/** Validate before any member construction (DeterministicRouting
 *  would otherwise panic on impossible shapes with a worse message). */
const FabricParams &
validated(const FabricParams &params)
{
    params.validate();
    return params;
}

} // namespace

Fabric::Fabric(EventQueue &eq_, const FabricParams &params,
               ShardedEventQueue *shq_)
    : eq(eq_), shq(shq_), p(validated(params)),
      route(p.multiTier() ? p.railsPerGroup : p.numSwitches,
            p.interleaveBytes)
{
    if (shq && &shq->shard(0) != &eq)
        panic("fabric's base queue must be the sharded core's shard 0");
    if (p.multiTier())
        buildTiered();
    else
        buildFlat();
}

int
Fabric::numDomains(const FabricParams &params)
{
    return 1 + (params.multiTier() ? params.numGroups + 1
                                   : params.numSwitches);
}

int
Fabric::switchShard(const FabricParams &params, SwitchId s, int shards)
{
    if (shards < 2)
        panic("switchShard needs >= 2 shards (got %d)", shards);
    int domain;
    if (!params.multiTier())
        domain = 1 + s;
    else if (params.isSpineSwitch(s))
        domain = 1 + params.numGroups;
    else
        domain = 1 + s / params.railsPerGroup;
    return 1 + (domain - 1) % (shards - 1);
}

Cycle
Fabric::crossShardLookahead(const FabricParams &params, int shards)
{
    // GPU<->switch links always cross: GPUs live on shard 0, every
    // switch on a shard >= 1.
    Cycle la = params.linkLatency;
    if (!params.multiTier() || shards < 3)
        return la; // two shards put every switch together
    int spine_shard = switchShard(params, params.numLeaves(), shards);
    for (int l = 0; l < params.numLeaves(); ++l) {
        if (switchShard(params, l, shards) != spine_shard) {
            la = std::min(la, params.effectiveTierLinkLatency());
            break;
        }
    }
    return la;
}

EventQueue &
Fabric::switchQueue(SwitchId s)
{
    if (!shq)
        return eq;
    return shq->shard(switchShard(p, s, shq->numShards()));
}

void
Fabric::buildFlat()
{
    double link_bw = p.perLinkBytesPerCycle();

    switches.reserve(static_cast<std::size_t>(p.numSwitches));
    for (SwitchId s = 0; s < p.numSwitches; ++s) {
        switches.push_back(std::make_unique<SwitchChip>(
            switchQueue(s), s, switchNodeId(s), p.numGpus, p.sw));
        // Sharded chips keep their private per-chip id allocators:
        // a fabric-wide pool would be written from every shard.
        if (!shq)
            switches.back()->setPacketIds(&pktIds);
    }

    up.resize(static_cast<std::size_t>(p.numGpus));
    down.resize(static_cast<std::size_t>(p.numSwitches));
    for (SwitchId s = 0; s < p.numSwitches; ++s)
        down[static_cast<std::size_t>(s)].resize(
            static_cast<std::size_t>(p.numGpus));

    for (GpuId g = 0; g < p.numGpus; ++g) {
        auto &row = up[static_cast<std::size_t>(g)];
        row.resize(static_cast<std::size_t>(p.numSwitches));
        for (SwitchId s = 0; s < p.numSwitches; ++s) {
            // A link lives on its sender's queue; the sink's queue is
            // bound so deliveries execute on the sink's shard.
            row[static_cast<std::size_t>(s)] = std::make_unique<CreditLink>(
                eq, strfmt("up.g%d.s%d", g, s), link_bw, p.linkLatency,
                p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            if (shq)
                row[static_cast<std::size_t>(s)]->setSinkQueue(
                    switchQueue(s));
            switches[static_cast<std::size_t>(s)]->attachUplink(
                g, row[static_cast<std::size_t>(s)].get());

            auto dl = std::make_unique<CreditLink>(
                switchQueue(s), strfmt("dn.s%d.g%d", s, g), link_bw,
                p.linkLatency, p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            if (shq)
                dl->setSinkQueue(eq);
            switches[static_cast<std::size_t>(s)]->attachDownlink(
                g, dl.get());
            down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)] =
                std::move(dl);
        }
    }
}

void
Fabric::buildTiered()
{
    const int gpp = p.gpusPerGroup();
    const int leaves = p.numLeaves();
    const double rail_bw = p.perLinkBytesPerCycle();
    const double tier_bw = p.effectiveTierLinkBytesPerCycle();
    const Cycle tier_lat = p.effectiveTierLinkLatency();

    // Leaves own ports [0, gpp) for local GPUs and [gpp, gpp+spines)
    // for the spines; spines own one port per leaf.
    switches.reserve(static_cast<std::size_t>(p.numSwitches));
    for (SwitchId s = 0; s < p.numSwitches; ++s) {
        int ports = p.isSpineSwitch(s) ? leaves : gpp + p.numSpines;
        switches.push_back(std::make_unique<SwitchChip>(
            switchQueue(s), s, switchNodeId(s), ports, p.sw));
        if (!shq)
            switches.back()->setPacketIds(&pktIds);
    }

    up.resize(static_cast<std::size_t>(p.numGpus));
    down.resize(static_cast<std::size_t>(leaves));
    for (int l = 0; l < leaves; ++l)
        down[static_cast<std::size_t>(l)].resize(
            static_cast<std::size_t>(gpp));

    for (GpuId g = 0; g < p.numGpus; ++g) {
        int grp = g / gpp;
        int local = g % gpp;
        auto &row = up[static_cast<std::size_t>(g)];
        row.resize(static_cast<std::size_t>(p.railsPerGroup));
        for (int r = 0; r < p.railsPerGroup; ++r) {
            int l = p.leafIndex(grp, r);
            row[static_cast<std::size_t>(r)] = std::make_unique<CreditLink>(
                eq, strfmt("up.g%d.l%d", g, l), rail_bw, p.linkLatency,
                p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            if (shq)
                row[static_cast<std::size_t>(r)]->setSinkQueue(
                    switchQueue(l));
            switches[static_cast<std::size_t>(l)]->attachUplink(
                local, row[static_cast<std::size_t>(r)].get());

            auto dl = std::make_unique<CreditLink>(
                switchQueue(l), strfmt("dn.l%d.g%d", l, g), rail_bw,
                p.linkLatency, p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            if (shq)
                dl->setSinkQueue(eq);
            switches[static_cast<std::size_t>(l)]->attachDownlink(
                local, dl.get());
            down[static_cast<std::size_t>(l)][static_cast<std::size_t>(
                local)] = std::move(dl);
        }
    }

    tierUp.resize(static_cast<std::size_t>(leaves));
    tierDown.resize(static_cast<std::size_t>(p.numSpines));
    for (int k = 0; k < p.numSpines; ++k)
        tierDown[static_cast<std::size_t>(k)].resize(
            static_cast<std::size_t>(leaves));

    for (int l = 0; l < leaves; ++l) {
        auto &row = tierUp[static_cast<std::size_t>(l)];
        row.resize(static_cast<std::size_t>(p.numSpines));
        for (int k = 0; k < p.numSpines; ++k) {
            int spine = leaves + k;
            row[static_cast<std::size_t>(k)] = std::make_unique<CreditLink>(
                switchQueue(l), strfmt("t_up.l%d.k%d", l, k), tier_bw,
                tier_lat, p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            if (shq)
                row[static_cast<std::size_t>(k)]->setSinkQueue(
                    switchQueue(spine));
            switches[static_cast<std::size_t>(spine)]->attachUplink(
                l, row[static_cast<std::size_t>(k)].get());

            auto dl = std::make_unique<CreditLink>(
                switchQueue(spine), strfmt("t_dn.k%d.l%d", k, l), tier_bw,
                tier_lat, p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            if (shq)
                dl->setSinkQueue(switchQueue(l));
            switches[static_cast<std::size_t>(l)]->attachUplink(
                gpp + k, dl.get());
            switches[static_cast<std::size_t>(spine)]->attachDownlink(
                l, dl.get());
            // A leaf's spine-facing output port carries its uplink.
            switches[static_cast<std::size_t>(l)]->attachDownlink(
                gpp + k, row[static_cast<std::size_t>(k)].get());
            tierDown[static_cast<std::size_t>(k)]
                    [static_cast<std::size_t>(l)] = std::move(dl);
        }
    }

    for (int l = 0; l < leaves; ++l) {
        int lg = l / p.railsPerGroup;
        switches[static_cast<std::size_t>(l)]->setPortRouter(
            [this, lg, gpp](const Packet &pkt) {
                if (!isSwitchNode(pkt.dst)) {
                    if (pkt.dst / gpp == lg)
                        return pkt.dst % gpp;
                    return gpp + spinePort(pkt);
                }
                int s = pkt.dst - p.numGpus;
                if (p.isSpineSwitch(s))
                    return gpp + (s - p.numLeaves());
                // Foreign leaf: reachable only through a spine.
                return gpp + spinePort(pkt);
            });
    }
    for (int k = 0; k < p.numSpines; ++k) {
        switches[static_cast<std::size_t>(leaves + k)]->setPortRouter(
            [this, gpp](const Packet &pkt) {
                if (!isSwitchNode(pkt.dst))
                    return p.leafIndex(pkt.dst / gpp, railFor(pkt));
                int s = pkt.dst - p.numGpus;
                return p.isSpineSwitch(s) ? -1 : s;
            });
    }
}

int
Fabric::spinePort(const Packet &pkt) const
{
    return pkt.type == PacketType::groupSyncReq
               ? route.spineForGroup(pkt.group, p.numSpines)
               : route.spineForAddr(pkt.addr, p.numSpines);
}

int
Fabric::railFor(const Packet &pkt) const
{
    return pkt.type == PacketType::groupSyncReq
               ? route.switchForGroup(pkt.group)
               : route.switchForAddr(pkt.addr);
}

void
Fabric::attachGpu(GpuId g, PacketSink *sink)
{
    if (!p.multiTier()) {
        for (SwitchId s = 0; s < p.numSwitches; ++s)
            down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)]
                ->setSink(sink);
        return;
    }
    int gpp = p.gpusPerGroup();
    for (int r = 0; r < p.railsPerGroup; ++r)
        down[static_cast<std::size_t>(p.leafIndex(g / gpp, r))]
            [static_cast<std::size_t>(g % gpp)]
                ->setSink(sink);
}

void
Fabric::sendFromGpu(GpuId g, Packet &&pkt)
{
    pkt.vc = policedVc(pkt.vc, p.sw.unifiedDataVc);
    if (!p.multiTier()) {
        SwitchId s;
        if (isSwitchNode(pkt.dst)) {
            s = pkt.dst - p.numGpus;
        } else if (pkt.type == PacketType::groupSyncReq) {
            s = route.switchForGroup(pkt.group);
        } else {
            s = route.switchForAddr(pkt.addr);
        }
        up[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)]->send(
            std::move(pkt));
        return;
    }
    int grp = g / p.gpusPerGroup();
    int rail;
    if (isSwitchNode(pkt.dst)) {
        int s = pkt.dst - p.numGpus;
        if (!p.isSpineSwitch(s) && s / p.railsPerGroup == grp)
            rail = s % p.railsPerGroup; // own-group leaf: direct rail
        else
            rail = railFor(pkt); // spine/foreign leaf: hashed rail up
    } else {
        rail = railFor(pkt);
    }
    up[static_cast<std::size_t>(g)][static_cast<std::size_t>(rail)]->send(
        std::move(pkt));
}

int
Fabric::mergeNode(GpuId g, Addr addr) const
{
    SwitchId s = route.switchForAddr(addr);
    if (p.multiTier())
        s = p.leafIndex(g / p.gpusPerGroup(), s);
    return switchNodeId(s);
}

int
Fabric::syncNode(GpuId g, GroupId group) const
{
    SwitchId s = route.switchForGroup(group);
    if (p.multiTier())
        s = p.leafIndex(g / p.gpusPerGroup(), s);
    return switchNodeId(s);
}

int
Fabric::spineNodeForAddr(Addr addr) const
{
    if (!p.multiTier())
        panic("spineNodeForAddr on a flat fabric");
    return switchNodeId(p.numLeaves() +
                        route.spineForAddr(addr, p.numSpines));
}

int
Fabric::spineNodeForGroup(GroupId group) const
{
    if (!p.multiTier())
        panic("spineNodeForGroup on a flat fabric");
    return switchNodeId(p.numLeaves() +
                        route.spineForGroup(group, p.numSpines));
}

CreditLink &
Fabric::uplink(GpuId g, int i)
{
    return *up[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)];
}

CreditLink &
Fabric::downlink(SwitchId s, GpuId g)
{
    if (!p.multiTier())
        return *down[static_cast<std::size_t>(s)]
                    [static_cast<std::size_t>(g)];
    int gpp = p.gpusPerGroup();
    if (p.isSpineSwitch(s) || s / p.railsPerGroup != g / gpp)
        panic("downlink(%d, %d): switch is not a leaf of the GPU's "
              "group", s, g);
    return *down[static_cast<std::size_t>(s)]
                [static_cast<std::size_t>(g % gpp)];
}

const CreditLink &
Fabric::uplink(GpuId g, int i) const
{
    return *up[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)];
}

const CreditLink &
Fabric::downlink(SwitchId s, GpuId g) const
{
    return const_cast<Fabric *>(this)->downlink(s, g);
}

CreditLink &
Fabric::tierUplink(int leaf, int spine)
{
    return *tierUp[static_cast<std::size_t>(leaf)]
                  [static_cast<std::size_t>(spine)];
}

CreditLink &
Fabric::tierDownlink(int spine, int leaf)
{
    return *tierDown[static_cast<std::size_t>(spine)]
                    [static_cast<std::size_t>(leaf)];
}

void
Fabric::setProfiler(CausalProfiler *pr)
{
    // Containers are walked in forEachLink visit order, so the dense
    // link ids — and with them every profile-graph node and the
    // merged edge log — are identical across runs and shard counts.
    auto attach = [pr](CreditLink &l) {
        l.setProfiler(pr,
                      profnode::link(pr->addLink(l.name())));
    };
    for (auto &row : up)
        for (auto &l : row)
            attach(*l);
    for (auto &row : down)
        for (auto &l : row)
            attach(*l);
    for (auto &row : tierUp)
        for (auto &l : row)
            attach(*l);
    for (auto &row : tierDown)
        for (auto &l : row)
            attach(*l);
    for (auto &sw : switches)
        sw->setProfiler(pr);
}

void
Fabric::forEachLink(
    const std::function<void(const CreditLink &)> &fn) const
{
    forEachLink([&fn](const CreditLink &l, const LinkEndpoints &) {
        fn(l);
    });
}

void
Fabric::forEachLink(
    const std::function<void(const CreditLink &,
                             const LinkEndpoints &)> &fn) const
{
    const int gpp = p.multiTier() ? p.gpusPerGroup() : 0;
    for (GpuId g = 0; g < static_cast<GpuId>(up.size()); ++g) {
        const auto &row = up[static_cast<std::size_t>(g)];
        for (int i = 0; i < static_cast<int>(row.size()); ++i) {
            int s = p.multiTier() ? p.leafIndex(g / gpp, i) : i;
            fn(*row[static_cast<std::size_t>(i)],
               {g, switchNodeId(s)});
        }
    }
    for (SwitchId s = 0; s < static_cast<SwitchId>(down.size()); ++s) {
        const auto &row = down[static_cast<std::size_t>(s)];
        for (int i = 0; i < static_cast<int>(row.size()); ++i) {
            // Tiered rows are leaf-indexed over local GPUs; the GPU id
            // recomposes from the leaf's group and the local index.
            GpuId g = p.multiTier()
                          ? (s / p.railsPerGroup) * gpp + i
                          : i;
            fn(*row[static_cast<std::size_t>(i)],
               {switchNodeId(s), g});
        }
    }
    if (!p.multiTier())
        return;
    const int leaves = p.numLeaves();
    for (int l = 0; l < static_cast<int>(tierUp.size()); ++l) {
        const auto &row = tierUp[static_cast<std::size_t>(l)];
        for (int k = 0; k < static_cast<int>(row.size()); ++k)
            fn(*row[static_cast<std::size_t>(k)],
               {switchNodeId(l), switchNodeId(leaves + k)});
    }
    for (int k = 0; k < static_cast<int>(tierDown.size()); ++k) {
        const auto &row = tierDown[static_cast<std::size_t>(k)];
        for (int l = 0; l < static_cast<int>(row.size()); ++l)
            fn(*row[static_cast<std::size_t>(l)],
               {switchNodeId(leaves + k), switchNodeId(l)});
    }
}

std::vector<const CreditLink *>
Fabric::allLinks(int dir) const
{
    std::vector<const CreditLink *> ls;
    if (dir == 0 || dir == 2) {
        for (const auto &row : up)
            for (const auto &l : row)
                ls.push_back(l.get());
        for (const auto &row : tierUp)
            for (const auto &l : row)
                ls.push_back(l.get());
    }
    if (dir == 1 || dir == 2) {
        for (const auto &row : down)
            for (const auto &l : row)
                ls.push_back(l.get());
        for (const auto &row : tierDown)
            for (const auto &l : row)
                ls.push_back(l.get());
    }
    return ls;
}

double
Fabric::linkSetUtilization(const std::vector<const CreditLink *> &ls,
                           Cycle t0, Cycle t1) const
{
    if (ls.empty() || t1 <= t0)
        return 0.0;
    double total = 0.0;
    for (const auto *l : ls) {
        const TimeSeries &u = l->utilization();
        Cycle w = u.binWidth();
        std::size_t first = static_cast<std::size_t>(t0 / w);
        std::size_t last = static_cast<std::size_t>((t1 + w - 1) / w);
        double bytes = 0.0;
        for (std::size_t i = first; i < last; ++i)
            bytes += u.binValue(i);
        double cap = l->bytesPerCycle() * static_cast<double>(t1 - t0);
        total += std::min(1.0, bytes / cap);
    }
    return total / static_cast<double>(ls.size());
}

double
Fabric::avgUtilization(Cycle t0, Cycle t1) const
{
    return linkSetUtilization(allLinks(2), t0, t1);
}

double
Fabric::dirUtilization(bool up_dir, Cycle t0, Cycle t1) const
{
    return linkSetUtilization(allLinks(up_dir ? 0 : 1), t0, t1);
}

std::vector<double>
Fabric::utilizationSeries(Cycle t0, Cycle t1) const
{
    auto ls = allLinks(2);
    std::vector<double> out;
    if (ls.empty() || t1 <= t0)
        return out;
    Cycle w = p.utilBinWidth;
    std::size_t first = static_cast<std::size_t>(t0 / w);
    std::size_t last = static_cast<std::size_t>((t1 + w - 1) / w);
    out.assign(last - first, 0.0);
    for (const auto *l : ls) {
        double cap = l->bytesPerCycle() * static_cast<double>(w);
        for (std::size_t i = first; i < last; ++i) {
            out[i - first] +=
                std::min(1.0, l->utilization().binValue(i) / cap);
        }
    }
    for (auto &v : out)
        v /= static_cast<double>(ls.size());
    return out;
}

std::uint64_t
Fabric::totalWireBytes() const
{
    std::uint64_t n = 0;
    for (const auto *l : allLinks(2))
        n += l->totalWireBytes();
    return n;
}

void
Fabric::registerMetrics(MetricRegistry &reg,
                        const std::string &prefix) const
{
    if (!p.multiTier()) {
        for (int g = 0; g < p.numGpus; ++g) {
            for (int s = 0; s < p.numSwitches; ++s) {
                up[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)]
                    ->registerMetrics(reg, prefix + ".up.g" +
                                               std::to_string(g) + ".s" +
                                               std::to_string(s));
                down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)]
                    ->registerMetrics(reg, prefix + ".dn.s" +
                                               std::to_string(s) + ".g" +
                                               std::to_string(g));
            }
        }
        return;
    }
    int gpp = p.gpusPerGroup();
    for (int g = 0; g < p.numGpus; ++g) {
        for (int r = 0; r < p.railsPerGroup; ++r) {
            int l = p.leafIndex(g / gpp, r);
            up[static_cast<std::size_t>(g)][static_cast<std::size_t>(r)]
                ->registerMetrics(reg, prefix + ".up.g" +
                                           std::to_string(g) + ".l" +
                                           std::to_string(l));
            down[static_cast<std::size_t>(l)]
                [static_cast<std::size_t>(g % gpp)]
                    ->registerMetrics(reg, prefix + ".dn.l" +
                                               std::to_string(l) + ".g" +
                                               std::to_string(g));
        }
    }
    for (int l = 0; l < p.numLeaves(); ++l) {
        for (int k = 0; k < p.numSpines; ++k) {
            tierUp[static_cast<std::size_t>(l)][static_cast<std::size_t>(k)]
                ->registerMetrics(reg, prefix + ".t_up.l" +
                                           std::to_string(l) + ".k" +
                                           std::to_string(k));
            tierDown[static_cast<std::size_t>(k)]
                    [static_cast<std::size_t>(l)]
                        ->registerMetrics(reg, prefix + ".t_dn.k" +
                                                   std::to_string(k) +
                                                   ".l" +
                                                   std::to_string(l));
        }
    }
}

} // namespace cais
