#include "noc/network.hh"

#include <algorithm>

#include "common/log.hh"

namespace cais
{

Fabric::Fabric(EventQueue &eq_, const FabricParams &params)
    : eq(eq_), p(params), route(params.numSwitches, params.interleaveBytes)
{
    p.validate();

    double link_bw = p.perLinkBytesPerCycle();

    switches.reserve(static_cast<std::size_t>(p.numSwitches));
    for (SwitchId s = 0; s < p.numSwitches; ++s) {
        switches.push_back(std::make_unique<SwitchChip>(
            eq, s, switchNodeId(s), p.numGpus, p.sw));
        switches.back()->setPacketIds(&pktIds);
    }

    up.resize(static_cast<std::size_t>(p.numGpus));
    down.resize(static_cast<std::size_t>(p.numSwitches));
    for (SwitchId s = 0; s < p.numSwitches; ++s)
        down[static_cast<std::size_t>(s)].resize(
            static_cast<std::size_t>(p.numGpus));

    for (GpuId g = 0; g < p.numGpus; ++g) {
        auto &row = up[static_cast<std::size_t>(g)];
        row.resize(static_cast<std::size_t>(p.numSwitches));
        for (SwitchId s = 0; s < p.numSwitches; ++s) {
            row[static_cast<std::size_t>(s)] = std::make_unique<CreditLink>(
                eq, strfmt("up.g%d.s%d", g, s), link_bw, p.linkLatency,
                p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            switches[static_cast<std::size_t>(s)]->attachUplink(
                g, row[static_cast<std::size_t>(s)].get());

            auto dl = std::make_unique<CreditLink>(
                eq, strfmt("dn.s%d.g%d", s, g), link_bw, p.linkLatency,
                p.sw.numVcs, p.vcCredits, p.utilBinWidth);
            switches[static_cast<std::size_t>(s)]->attachDownlink(
                g, dl.get());
            down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)] =
                std::move(dl);
        }
    }
}

void
Fabric::attachGpu(GpuId g, PacketSink *sink)
{
    for (SwitchId s = 0; s < p.numSwitches; ++s)
        down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)]
            ->setSink(sink);
}

void
Fabric::sendFromGpu(GpuId g, Packet &&pkt)
{
    pkt.vc = policedVc(pkt.vc, p.sw.unifiedDataVc);
    SwitchId s;
    if (isSwitchNode(pkt.dst)) {
        s = pkt.dst - p.numGpus;
    } else if (pkt.type == PacketType::groupSyncReq) {
        s = route.switchForGroup(pkt.group);
    } else {
        s = route.switchForAddr(pkt.addr);
    }
    up[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)]->send(
        std::move(pkt));
}

CreditLink &
Fabric::uplink(GpuId g, SwitchId s)
{
    return *up[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)];
}

CreditLink &
Fabric::downlink(SwitchId s, GpuId g)
{
    return *down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)];
}

const CreditLink &
Fabric::uplink(GpuId g, SwitchId s) const
{
    return *up[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)];
}

const CreditLink &
Fabric::downlink(SwitchId s, GpuId g) const
{
    return *down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)];
}

std::vector<const CreditLink *>
Fabric::allLinks(int dir) const
{
    std::vector<const CreditLink *> ls;
    if (dir == 0 || dir == 2)
        for (const auto &row : up)
            for (const auto &l : row)
                ls.push_back(l.get());
    if (dir == 1 || dir == 2)
        for (const auto &row : down)
            for (const auto &l : row)
                ls.push_back(l.get());
    return ls;
}

double
Fabric::linkSetUtilization(const std::vector<const CreditLink *> &ls,
                           Cycle t0, Cycle t1) const
{
    if (ls.empty() || t1 <= t0)
        return 0.0;
    double total = 0.0;
    for (const auto *l : ls) {
        const TimeSeries &u = l->utilization();
        Cycle w = u.binWidth();
        std::size_t first = static_cast<std::size_t>(t0 / w);
        std::size_t last = static_cast<std::size_t>((t1 + w - 1) / w);
        double bytes = 0.0;
        for (std::size_t i = first; i < last; ++i)
            bytes += u.binValue(i);
        double cap = l->bytesPerCycle() * static_cast<double>(t1 - t0);
        total += std::min(1.0, bytes / cap);
    }
    return total / static_cast<double>(ls.size());
}

double
Fabric::avgUtilization(Cycle t0, Cycle t1) const
{
    return linkSetUtilization(allLinks(2), t0, t1);
}

double
Fabric::dirUtilization(bool up_dir, Cycle t0, Cycle t1) const
{
    return linkSetUtilization(allLinks(up_dir ? 0 : 1), t0, t1);
}

std::vector<double>
Fabric::utilizationSeries(Cycle t0, Cycle t1) const
{
    auto ls = allLinks(2);
    std::vector<double> out;
    if (ls.empty() || t1 <= t0)
        return out;
    Cycle w = p.utilBinWidth;
    std::size_t first = static_cast<std::size_t>(t0 / w);
    std::size_t last = static_cast<std::size_t>((t1 + w - 1) / w);
    out.assign(last - first, 0.0);
    for (const auto *l : ls) {
        double cap = l->bytesPerCycle() * static_cast<double>(w);
        for (std::size_t i = first; i < last; ++i) {
            out[i - first] +=
                std::min(1.0, l->utilization().binValue(i) / cap);
        }
    }
    for (auto &v : out)
        v /= static_cast<double>(ls.size());
    return out;
}

std::uint64_t
Fabric::totalWireBytes() const
{
    std::uint64_t n = 0;
    for (const auto *l : allLinks(2))
        n += l->totalWireBytes();
    return n;
}

void
Fabric::registerMetrics(MetricRegistry &reg,
                        const std::string &prefix) const
{
    for (int g = 0; g < p.numGpus; ++g) {
        for (int s = 0; s < p.numSwitches; ++s) {
            up[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)]
                ->registerMetrics(reg, prefix + ".up.g" +
                                           std::to_string(g) + ".s" +
                                           std::to_string(s));
            down[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)]
                ->registerMetrics(reg, prefix + ".dn.s" +
                                           std::to_string(s) + ".g" +
                                           std::to_string(g));
        }
    }
}

} // namespace cais
