#include "noc/arbiter.hh"

#include "common/log.hh"

namespace cais
{

RoundRobinArbiter::RoundRobinArbiter(int num_inputs)
    : n(num_inputs), last(num_inputs - 1)
{
    if (num_inputs <= 0)
        panic("arbiter needs at least one input");
}

int
RoundRobinArbiter::pick(const std::function<bool(int)> &ready)
{
    for (int i = 1; i <= n; ++i) {
        int idx = (last + i) % n;
        if (ready(idx)) {
            last = idx;
            return idx;
        }
    }
    return -1;
}

} // namespace cais
