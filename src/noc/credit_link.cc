#include "noc/credit_link.hh"

#include <cmath>

#include "common/log.hh"

namespace cais
{

CreditLink::CreditLink(EventQueue &eq_, std::string name,
                       double bytes_per_cycle, Cycle latency, int num_vcs,
                       int vc_credits, Cycle util_bin_width)
    : eq(eq_), linkName(std::move(name)), bw(bytes_per_cycle),
      lat(latency), queues(static_cast<std::size_t>(num_vcs)),
      creditCount(static_cast<std::size_t>(num_vcs), vc_credits),
      arb(num_vcs), util(util_bin_width)
{
    if (bw <= 0.0)
        panic("link %s: non-positive bandwidth", linkName.c_str());
}

void
CreditLink::setDequeueCallback(std::function<void(int)> cb)
{
    dequeueCb = std::move(cb);
}

void
CreditLink::send(Packet &&pkt)
{
    int vc = static_cast<int>(pkt.vc);
    if (vc < 0 || vc >= numVcs())
        panic("link %s: bad VC %d", linkName.c_str(), vc);
    queues[static_cast<std::size_t>(vc)].push_back(std::move(pkt));
    tryIssue();
}

void
CreditLink::returnCredit(int vc)
{
    // The credit travels the reverse channel; charge the link latency
    // but no serialization (credits ride dedicated wires).
    eq.scheduleAfter(lat, [this, vc] {
        ++creditCount[static_cast<std::size_t>(vc)];
        tryIssue();
    });
}

std::size_t
CreditLink::totalQueued() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n += q.size();
    return n;
}

void
CreditLink::tryIssue()
{
    if (eq.now() < busyUntil) {
        if (!wakeScheduled) {
            wakeScheduled = true;
            eq.schedule(busyUntil, [this] {
                wakeScheduled = false;
                tryIssue();
            });
        }
        return;
    }

    int vc = arb.pick([this](int i) {
        auto idx = static_cast<std::size_t>(i);
        return !queues[idx].empty() && creditCount[idx] > 0;
    });
    if (vc < 0)
        return;

    auto idx = static_cast<std::size_t>(vc);
    Packet pkt = std::move(queues[idx].front());
    queues[idx].pop_front();
    --creditCount[idx];

    Cycle ser = static_cast<Cycle>(
        std::ceil(static_cast<double>(pkt.wireBytes()) / bw));
    if (ser == 0)
        ser = 1;

    Cycle start = eq.now();
    busyUntil = start + ser;
    busy += ser;
    util.recordInterval(start, start + ser,
                        static_cast<double>(pkt.wireBytes()));
    wireBytes.inc(pkt.wireBytes());
    payloadBytes.inc(pkt.payloadBytes);
    packets.inc();

    if (dequeueCb)
        dequeueCb(vc);

    if (!sink)
        panic("link %s has no sink", linkName.c_str());

    // Deliver after serialization plus propagation.
    Cycle deliver_at = start + ser + lat;
    // Move the payload into the deliver event.
    eq.schedule(deliver_at,
                [this, p = std::move(pkt), vc]() mutable {
        sink->acceptPacket(std::move(p), this, vc);
    });

    // Keep draining back-to-back.
    if (!wakeScheduled) {
        wakeScheduled = true;
        eq.schedule(busyUntil, [this] {
            wakeScheduled = false;
            tryIssue();
        });
    }
}

} // namespace cais
