#include "noc/credit_link.hh"

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

CreditLink::CreditLink(EventQueue &eq_, std::string name,
                       double bytes_per_cycle, Cycle latency, int num_vcs,
                       int vc_credits, Cycle util_bin_width)
    : eq(eq_), sinkEq(&eq_), linkName(std::move(name)), bw(bytes_per_cycle),
      serDiv(bytes_per_cycle), lat(latency),
      queues(static_cast<std::size_t>(num_vcs)),
      creditCount(static_cast<std::size_t>(num_vcs), vc_credits),
      pendingCredits(static_cast<std::size_t>(num_vcs)),
      arb(num_vcs), util(util_bin_width)
{
    if (bw <= 0.0)
        panic("link %s: non-positive bandwidth", linkName.c_str());
}

void
CreditLink::setDequeueCallback(std::function<void(int)> cb)
{
    dequeueCb = std::move(cb);
}

void
CreditLink::send(Packet &&pkt)
{
    int vc = static_cast<int>(pkt.vc);
    if (vc < 0 || vc >= numVcs())
        panic("link %s: bad VC %d", linkName.c_str(), vc);
    if (prof) {
        // Provenance stamp: who caused this send, and when it was
        // enqueued (the sender's ScopedCause runs in this event, so
        // cause time == now).
        pkt.profSrc = prof->causeNode();
        pkt.profT = eq.now();
        pkt.profCreditStalled = false;
    }
    queues[static_cast<std::size_t>(vc)].push_back(std::move(pkt));
    ++queuedTotal;
    tryIssue();
}

void
CreditLink::returnCredit(int vc)
{
    // The credit travels the reverse channel; charge the link latency
    // but no serialization (credits ride dedicated wires). Credits for
    // the same VC freed in the same cycle share one arrival event.
    auto &pend = pendingCredits[static_cast<std::size_t>(vc)];
    if (splitShards()) {
        // The sink frees slots from its own shard; its clock is the
        // authoritative one here. The batch cell stays sink-owned —
        // the sender-side arrival event only reads it (the sink wrote
        // it at least one window earlier; the barrier orders the
        // accesses) — and dead cells are trimmed against the safe
        // horizon instead of popped by the arrival. Event count and
        // coalescing match the sequential path 1:1.
        ShardCtx *ctx = EventQueue::threadShardCtx();
        Cycle horizon = ctx ? ctx->safeHorizon : sinkEq->now();
        while (!pend.empty() && pend.front().first < horizon)
            pend.pop_front();
        Cycle at = sinkEq->now() + lat;
        if (!pend.empty() && pend.back().first == at) {
            ++pend.back().second;
            return;
        }
        pend.emplace_back(at, 1);
        // Deque references are stable under push_back/pop_front, so
        // the captured cell pointer stays valid until trimmed.
        const std::pair<Cycle, int> *cell = &pend.back();
        eq.schedule(at, [this, vc, cell] {
            creditCount[static_cast<std::size_t>(vc)] += cell->second;
            tryIssue();
        });
        return;
    }
    Cycle at = eq.now() + lat;
    if (!pend.empty() && pend.back().first == at) {
        ++pend.back().second;
        return;
    }
    pend.emplace_back(at, 1);
    eq.scheduleAfter(lat, [this, vc] {
        auto &pd = pendingCredits[static_cast<std::size_t>(vc)];
        creditCount[static_cast<std::size_t>(vc)] += pd.front().second;
        pd.pop_front();
        tryIssue();
    });
}

std::size_t
CreditLink::totalQueued() const
{
    return queuedTotal;
}

void
CreditLink::tryIssue()
{
    if (eq.now() < busyUntil) {
        if (!wakeScheduled) {
            wakeScheduled = true;
            eq.schedule(busyUntil, [this] {
                wakeScheduled = false;
                tryIssue();
            });
        }
        return;
    }

    int vc = arb.pick([this](int i) {
        auto idx = static_cast<std::size_t>(i);
        return !queues[idx].empty() && creditCount[idx] > 0;
    });
    if (vc < 0) {
        // Every non-empty queue is blocked on credits (the serializer
        // is idle here); mark the heads so their queue-wait edge is
        // classed as a credit stall rather than wire occupancy.
        if (prof)
            for (auto &q : queues)
                if (!q.empty())
                    q.front().profCreditStalled = true;
        return;
    }

    auto idx = static_cast<std::size_t>(vc);
    Packet pkt = std::move(queues[idx].front());
    queues[idx].pop_front();
    --queuedTotal;
    --creditCount[idx];

    Cycle ser = serDiv.cycles(pkt.wireBytes());
    if (ser == 0)
        ser = 1;

    Cycle start = eq.now();
    busyUntil = start + ser;
    busy += ser;
    util.recordInterval(start, start + ser,
                        static_cast<double>(pkt.wireBytes()));
    wireBytes.inc(pkt.wireBytes());
    payloadBytes.inc(pkt.payloadBytes);
    packets.inc();

    if (dequeueCb)
        dequeueCb(vc);

    if (!sink)
        panic("link %s has no sink", linkName.c_str());

    // Deliver after serialization plus propagation, moving the payload
    // into the deliver event (no allocation: InlineEvent holds it).
    Cycle deliver_at = start + ser + lat;

    if (prof) {
        // Queue-wait edge (zero-length when the packet issued the
        // cycle it was sent): hops the walk back to the sender-side
        // cause. Then the wire-occupancy edge covering ser + lat.
        prof->record(profNode_,
                     pkt.profCreditStalled
                         ? WaitClass::creditStall
                         : WaitClass::linkSerialization,
                     pkt.profT, start, pkt.profSrc, pkt.profT);
        prof->record(profNode_, WaitClass::linkSerialization, start,
                     deliver_at, profNode_, start);
    }

    if (deliver_at == busyUntil && !wakeScheduled && !splitShards()) {
        // Zero-latency link: the drain wake would land on the same
        // cycle directly after the delivery; fold it into one event.
        // (Split links always have lat >= lookahead >= 1, so the fold
        // — which mixes sender and sink state in one event — can only
        // apply when both ends share a queue.)
        wakeScheduled = true;
        eq.schedule(deliver_at, [this, p = std::move(pkt), vc]() mutable {
            {
                CausalProfiler::ScopedCause sc(prof, profNode_,
                                               eq.now());
                sink->acceptPacket(std::move(p), this, vc);
            }
            wakeScheduled = false;
            tryIssue();
        });
        return;
    }

    // Delivery executes on the sink's shard (== eq when co-located).
    sinkEq->schedule(deliver_at, [this, p = std::move(pkt), vc]() mutable {
        // The delivery is the enabling cause of whatever the sink
        // records downstream (hub completions, TB wakeups).
        CausalProfiler::ScopedCause sc(prof, profNode_,
                                       sinkEq->now());
        sink->acceptPacket(std::move(p), this, vc);
    });

    // Keep draining back-to-back. The wake is armed even when the
    // queues are momentarily empty: its early seq pins the drain
    // ahead of same-cycle credit arrivals, which keeps round-robin
    // arbitration order identical to the original implementation.
    if (!wakeScheduled) {
        wakeScheduled = true;
        eq.schedule(busyUntil, [this] {
            wakeScheduled = false;
            tryIssue();
        });
    }
}

void
CreditLink::registerMetrics(MetricRegistry &reg,
                            const std::string &prefix) const
{
    // The per-bin utilization TimeSeries is deliberately not
    // registered: one series per link direction would dominate the
    // report; Fabric exposes the fleet-wide aggregate instead.
    reg.addCounter(prefix + ".wireBytes", &wireBytes);
    reg.addCounter(prefix + ".payloadBytes", &payloadBytes);
    reg.addCounter(prefix + ".packets", &packets);
    reg.addGaugeU64(prefix + ".busyCycles", [this] { return busy; });
}

} // namespace cais
