#include "noc/switch_port.hh"

#include "common/log.hh"

namespace cais
{

OutputPort::OutputPort(CreditLink *link, int max_queue_per_vc)
    : out(link), maxPerVc(max_queue_per_vc)
{
    if (!out)
        panic("output port without link");
}

bool
OutputPort::canAccept(VcClass vc) const
{
    return out->queueLen(static_cast<int>(vc)) <
           static_cast<std::size_t>(maxPerVc);
}

void
OutputPort::enqueue(Packet &&pkt)
{
    if (!canAccept(pkt.vc))
        panic("output port overflow on %s", out->name().c_str());
    out->send(std::move(pkt));
}

void
OutputPort::enqueueForced(Packet &&pkt)
{
    out->send(std::move(pkt));
}

void
OutputPort::setSpaceCallback(std::function<void(int)> cb)
{
    out->setDequeueCallback(std::move(cb));
}

} // namespace cais
