#include "noc/routing.hh"

#include "common/log.hh"

namespace cais
{

namespace
{

/** Salt decorrelating the spine hash from the rail hash, so the
 *  spine choice is not a function of the rail choice. */
constexpr std::uint64_t spineSalt = 0x5ca1ab1eull;

} // namespace

DeterministicRouting::DeterministicRouting(int num_switches,
                                           std::uint64_t interleave_bytes)
    : switches(num_switches), interleave(interleave_bytes)
{
    if (num_switches <= 0)
        panic("need at least one switch");
    if (interleave_bytes == 0)
        panic("interleave granularity must be non-zero");
}

std::uint64_t
DeterministicRouting::mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

SwitchId
DeterministicRouting::switchForAddr(Addr addr) const
{
    return static_cast<SwitchId>(
        mix64(addr / interleave) % static_cast<std::uint64_t>(switches));
}

SwitchId
DeterministicRouting::switchForGroup(GroupId g) const
{
    return static_cast<SwitchId>(
        mix64(static_cast<std::uint64_t>(g) ^ 0xc0ffee) %
        static_cast<std::uint64_t>(switches));
}

SwitchId
DeterministicRouting::spineForAddr(Addr addr, int num_spines) const
{
    if (num_spines <= 0)
        panic("need at least one spine");
    return static_cast<SwitchId>(
        mix64(mix64(addr / interleave) ^ spineSalt) %
        static_cast<std::uint64_t>(num_spines));
}

SwitchId
DeterministicRouting::spineForGroup(GroupId g, int num_spines) const
{
    if (num_spines <= 0)
        panic("need at least one spine");
    return static_cast<SwitchId>(
        mix64(mix64(static_cast<std::uint64_t>(g) ^ 0xc0ffee) ^
              spineSalt) %
        static_cast<std::uint64_t>(num_spines));
}

} // namespace cais
