/**
 * @file
 * NVSwitch chip model.
 *
 * Each GPU-facing input port has `numVcs` virtual channels of
 * `vcDepth` packets (8 x 256 per the paper's configuration). Packets
 * either belong to in-switch computing (NVLS multimem, CAIS load/red,
 * group sync) and are consumed by an attached SwitchComputeHandler, or
 * are plain unicast traffic forwarded to the destination GPU's output
 * port. Forwarding stalls when the output staging queue for the
 * packet's VC is full, blocking only that VC's head (other VCs
 * proceed), which is exactly the head-of-line behaviour CAIS's traffic
 * control addresses.
 */

#ifndef CAIS_NOC_SWITCH_CHIP_HH
#define CAIS_NOC_SWITCH_CHIP_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "noc/switch_port.hh"
#include "noc/virtual_channel.hh"

namespace cais
{

class CausalProfiler;

/** Tunables of one switch chip. */
struct SwitchParams
{
    CAIS_OWNED_BY_DOMAIN(config);

    Cycle pipelineDelay = 100;  ///< input-to-output latency, cycles
    Cycle perPacketProcess = 1; ///< per-VC head service interval
    int numVcs = 8;
    int vcDepth = 256;
    int outQueueDepth = 256;

    /**
     * Collapse all data classes (response/reduction/multicast) onto a
     * single VC, disabling CAIS traffic control (CAIS-Partial).
     */
    bool unifiedDataVc = false;
};

/**
 * Interface the in-switch compute layer (NVLS unit, CAIS merge unit,
 * group sync table) implements to intercept fabric packets.
 */
class SwitchComputeHandler
{
  public:
    virtual ~SwitchComputeHandler() = default;

    /** True if this packet is consumed by in-switch computing. */
    virtual bool wants(const Packet &pkt) const = 0;

    /** Consume a packet previously accepted by wants(). */
    virtual void handlePacket(Packet &&pkt) = 0;
};

/** One NVSwitch chip with per-GPU input and output ports. */
class SwitchChip : public PacketSink, public Probe
{
  public:
    SwitchChip(EventQueue &eq, SwitchId id, int node_id, int num_gpus,
               const SwitchParams &params);

    /** Register the GPU->switch link arriving at port @p g. */
    void attachUplink(GpuId g, CreditLink *from_gpu);

    /** Register the switch->GPU link leaving toward GPU @p g. */
    void attachDownlink(GpuId g, CreditLink *to_gpu);

    void setComputeHandler(SwitchComputeHandler *h) { handler = h; }

    /** Attach the causal profiler (DESIGN.md §6g); hooks stamp
     *  ingress-arrival times and record VC-arbitration edges. */
    void setProfiler(CausalProfiler *pr) { prof = pr; }

    /** The attached profiler, read by the in-switch compute units. */
    CausalProfiler *profiler() const { return prof; }

    /**
     * Install the output-port lookup for forwarded and unit-generated
     * packets. Multi-tier fabrics use this to steer packets whose
     * destination is not directly attached (a remote GPU or another
     * switch) onto the right tier link. Without a router the chip
     * assumes the flat shape: output port == destination GPU id.
     */
    void setPortRouter(std::function<int(const Packet &)> r)
    {
        router = std::move(r);
    }

    /**
     * Point unit-generated packets at the simulation-wide id source
     * (the owning Fabric's allocator). A standalone chip (unit tests)
     * falls back to a private allocator.
     */
    void setPacketIds(PacketIdAllocator *ids) { pktIds = ids; }

    /** Id source for packets the attached compute units generate. */
    PacketIdAllocator &packetIds() { return *pktIds; }

    /** Build a unit-generated packet (src = this switch's node id)
     *  with a fresh id from the simulation-wide allocator. */
    Packet makePacket(PacketType t, int dst)
    {
        return cais::makePacket(*pktIds, t, node, dst);
    }

    void acceptPacket(Packet &&pkt, CreditLink *from, int vc) override;

    /**
     * Send a unit-generated packet toward GPU pkt.dst (bypasses the
     * forwarding bound; used by NVLS/merge/sync units).
     */
    void sendToGpu(Packet &&pkt);

    /** Forwarding-queue occupancy toward GPU @p g on class @p vc. */
    std::size_t downlinkQueue(GpuId g, VcClass vc) const;

    EventQueue &eventQueue() { return eq; }
    SwitchId id() const { return switchId; }
    int nodeId() const { return node; }
    int numGpus() const { return static_cast<int>(inPorts.size()); }
    /** Port-count alias: on multi-tier chips ports cover both locally
     *  attached GPUs and tier links, so "numGpus" is a misnomer. */
    int numPorts() const { return static_cast<int>(inPorts.size()); }
    const SwitchParams &params() const { return p; }

    std::uint64_t packetsForwarded() const { return forwarded.value(); }
    std::uint64_t packetsConsumed() const { return consumed.value(); }
    std::uint64_t packetsGenerated() const { return generated.value(); }

    /** Peak input-VC occupancy across all ports (buffer studies). */
    std::size_t peakInputOccupancy() const;

    /** Live input-VC occupancy summed over ports for class @p vc. */
    std::size_t inputOccupancy(int vc) const;

    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const override;

  private:
    CAIS_OWNED_BY_DOMAIN(switch_domain);

    struct InPort
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        CreditLink *link = nullptr;
        std::vector<VirtualChannel> vcs;
        /** True while a service event or a blocked head owns the VC. */
        std::vector<bool> busy;
    };

    void scheduleProcess(int port, int vc, Cycle delay);
    void processHead(int port, int vc);
    void onDownlinkSpace(GpuId g, int vc);

    EventQueue &eq;
    SwitchId switchId;
    int node;
    SwitchParams p;

    std::vector<InPort> inPorts;
    std::vector<std::unique_ptr<OutputPort>> outPorts;

    /** Heads blocked per (dst GPU, VC class): list of (port, in-vc). */
    std::vector<std::vector<std::vector<std::pair<int, int>>>> waiting;

    SwitchComputeHandler *handler = nullptr;
    CausalProfiler *prof = nullptr;
    std::function<int(const Packet &)> router;

    PacketIdAllocator ownIds;
    PacketIdAllocator *pktIds = &ownIds;

    Counter forwarded;
    Counter consumed;
    Counter generated;
};

} // namespace cais

#endif // CAIS_NOC_SWITCH_CHIP_HH
