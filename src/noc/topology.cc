#include "noc/topology.hh"

#include <sstream>

#include "common/log.hh"

namespace cais
{

std::string
FabricParams::validationError() const
{
    if (numGpus < 2)
        return strfmt("fabric needs at least 2 GPUs (got %d)",
                      numGpus);
    if (numSwitches < 1)
        return strfmt("fabric needs at least 1 switch (got %d)",
                      numSwitches);
    if (perGpuBytesPerCycle <= 0.0)
        return "per-GPU bandwidth must be positive";
    if (sw.numVcs < 1)
        return "switch needs at least one VC";
    if (vcCredits < 1 || sw.vcDepth < 1)
        return "VC buffering must be at least one packet";
    if (sw.numVcs < static_cast<int>(VcClass::numClasses))
        return strfmt("switch needs >= %d VCs (got %d)",
                      static_cast<int>(VcClass::numClasses),
                      sw.numVcs);
    if (interleaveBytes == 0)
        return "interleave granularity must be non-zero";
    return "";
}

void
FabricParams::validate() const
{
    std::string err = validationError();
    if (!err.empty())
        fatal("%s", err.c_str());
}

std::string
FabricParams::str() const
{
    std::ostringstream os;
    os << numGpus << " GPUs x " << numSwitches << " switches, "
       << perGpuBytesPerCycle << " B/cyc per GPU per direction ("
       << perLinkBytesPerCycle() << " per link), latency "
       << linkLatency << " cyc";
    return os.str();
}

} // namespace cais
