#include "noc/topology.hh"

#include <sstream>

#include "common/log.hh"
#include "common/nodemask.hh"

namespace cais
{

namespace
{

/** A preset and the name it is registered under. */
struct Preset
{
    CAIS_OWNED_BY_DOMAIN(config);

    const char *name;
    FabricParams params;
};

FabricParams
flatPreset(int gpus, int switches)
{
    FabricParams p;
    p.numGpus = gpus;
    p.numSwitches = switches;
    return p;
}

FabricParams
tieredPreset(int groups, int gpus_per_group, int rails, int spines)
{
    FabricParams p;
    p.numGpus = groups * gpus_per_group;
    p.numGroups = groups;
    p.railsPerGroup = rails;
    p.numSpines = spines;
    p.numSwitches = p.numLeaves() + spines;
    return p;
}

/** Preset table. Shapes:
 *  - dgx-h100: the paper's flat 8-GPU / 4-NVSwitch node.
 *  - nvl72: NVL72-class rack — 9 nodes x 8 GPUs, 4 rails per node
 *    (36 leaves) feeding 6 spine switches.
 *  - rail-optimized-2node/-4node: 2 or 4 DGX-style nodes, 4 rails
 *    each, joined by 4 spines. */
const std::vector<Preset> &
presets()
{
    static const std::vector<Preset> table = {
        {"dgx-h100", flatPreset(8, 4)},
        {"nvl72", tieredPreset(9, 8, 4, 6)},
        {"rail-optimized-2node", tieredPreset(2, 8, 4, 4)},
        {"rail-optimized-4node", tieredPreset(4, 8, 4, 4)},
    };
    return table;
}

} // namespace

const FabricParams *
FabricParams::findPreset(const std::string &name)
{
    for (const Preset &p : presets())
        if (name == p.name)
            return &p.params;
    return nullptr;
}

FabricParams
FabricParams::preset(const std::string &name)
{
    const FabricParams *p = findPreset(name);
    if (!p) {
        std::string names;
        for (const std::string &n : presetNames())
            names += (names.empty() ? "" : ", ") + n;
        fatal("unknown topology preset '%s' (known: %s)", name.c_str(),
              names.c_str());
    }
    return *p;
}

std::vector<std::string>
FabricParams::presetNames()
{
    std::vector<std::string> names;
    for (const Preset &p : presets())
        names.push_back(p.name);
    return names;
}

FabricParams
FabricParams::withGpus(int gpus) const
{
    FabricParams p = *this;
    if (!multiTier()) {
        p.numGpus = gpus;
        return p;
    }
    int per_group = gpusPerGroup();
    if (per_group <= 0 || gpus % per_group != 0) {
        // Leave an impossible shape for validationError() to report
        // with the divisibility message instead of silently rounding.
        p.numGpus = gpus;
        return p;
    }
    p.numGpus = gpus;
    p.numGroups = gpus / per_group;
    p.numSwitches = p.numLeaves() + p.numSpines;
    return p;
}

std::string
FabricParams::validationError() const
{
    if (numGpus < 2)
        return strfmt("fabric needs at least 2 GPUs (got %d)",
                      numGpus);
    if (numSwitches < 1)
        return strfmt("fabric needs at least 1 switch (got %d)",
                      numSwitches);
    if (perGpuBytesPerCycle <= 0.0)
        return "per-GPU bandwidth must be positive";
    if (sw.numVcs < 1)
        return "switch needs at least one VC";
    if (vcCredits < 1 || sw.vcDepth < 1)
        return "VC buffering must be at least one packet";
    if (sw.numVcs < static_cast<int>(VcClass::numClasses))
        return strfmt("switch needs >= %d VCs (got %d)",
                      static_cast<int>(VcClass::numClasses),
                      sw.numVcs);
    if (interleaveBytes == 0)
        return "interleave granularity must be non-zero";
    if (numGroups < 1)
        return strfmt("fabric needs at least 1 GPU group (got %d)",
                      numGroups);
    if (!multiTier()) {
        if (numGroups > 1 || railsPerGroup > 0)
            return strfmt("tier shape (%d groups, %d rails) needs "
                          "spine switches (numSpines == 0 selects the "
                          "flat topology)",
                          numGroups, railsPerGroup);
        return "";
    }
    if (railsPerGroup < 1)
        return strfmt("multi-tier fabric needs at least 1 rail per "
                      "group (got %d)",
                      railsPerGroup);
    if (numGpus % numGroups != 0)
        return strfmt("GPU count %d is not divisible by the group "
                      "count %d (every group must hold the same "
                      "number of GPUs)",
                      numGpus, numGroups);
    if (gpusPerGroup() < 2)
        return strfmt("multi-tier groups need at least 2 GPUs each "
                      "(got %d GPUs across %d groups)",
                      numGpus, numGroups);
    if (numSwitches != numLeaves() + numSpines)
        return strfmt("numSwitches %d does not match the tier shape: "
                      "%d groups x %d rails + %d spines = %d",
                      numSwitches, numGroups, railsPerGroup, numSpines,
                      numLeaves() + numSpines);
    if (tierLinkBytesPerCycle < 0.0)
        return "inter-tier bandwidth must be non-negative";
    if (numGpus + numSwitches > NodeMask::capacity)
        return strfmt("fabric has %d nodes (%d GPUs + %d switches) "
                      "but session masks track at most %d",
                      numGpus + numSwitches, numGpus, numSwitches,
                      NodeMask::capacity);
    return "";
}

void
FabricParams::validate() const
{
    std::string err = validationError();
    if (!err.empty())
        fatal("%s", err.c_str());
}

std::string
FabricParams::str() const
{
    std::ostringstream os;
    if (multiTier()) {
        os << numGpus << " GPUs in " << numGroups << " groups x "
           << railsPerGroup << " rails, " << numSpines << " spines, "
           << perGpuBytesPerCycle << " B/cyc per GPU per direction ("
           << perLinkBytesPerCycle() << " per rail link, "
           << effectiveTierLinkBytesPerCycle()
           << " per tier link), latency " << linkLatency << "/"
           << effectiveTierLinkLatency() << " cyc";
        return os.str();
    }
    os << numGpus << " GPUs x " << numSwitches << " switches, "
       << perGpuBytesPerCycle << " B/cyc per GPU per direction ("
       << perLinkBytesPerCycle() << " per link), latency "
       << linkLatency << " cyc";
    return os.str();
}

} // namespace cais
