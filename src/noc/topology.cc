#include "noc/topology.hh"

#include <sstream>

#include "common/log.hh"

namespace cais
{

void
FabricParams::validate() const
{
    if (numGpus < 2)
        fatal("fabric needs at least 2 GPUs (got %d)", numGpus);
    if (numSwitches < 1)
        fatal("fabric needs at least 1 switch (got %d)", numSwitches);
    if (perGpuBytesPerCycle <= 0.0)
        fatal("per-GPU bandwidth must be positive");
    if (vcCredits < 1 || sw.vcDepth < 1)
        fatal("VC buffering must be at least one packet");
    if (sw.numVcs < static_cast<int>(VcClass::numClasses))
        fatal("switch needs >= %d VCs (got %d)",
              static_cast<int>(VcClass::numClasses), sw.numVcs);
    if (interleaveBytes == 0)
        fatal("interleave granularity must be non-zero");
}

std::string
FabricParams::str() const
{
    std::ostringstream os;
    os << numGpus << " GPUs x " << numSwitches << " switches, "
       << perGpuBytesPerCycle << " B/cyc per GPU per direction ("
       << perLinkBytesPerCycle() << " per link), latency "
       << linkLatency << " cyc";
    return os.str();
}

} // namespace cais
