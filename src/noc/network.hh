/**
 * @file
 * The assembled NVLink/NVSwitch fabric: switches, links, deterministic
 * routing, GPU attachment points, and fleet-wide utilization probes.
 *
 * Flat shapes wire every GPU to every switch. Multi-tier shapes wire
 * each GPU to its group's rail (leaf) switches and every leaf to every
 * spine switch; per-chip port routers steer packets whose destination
 * is not directly attached onto the right tier link.
 */

#ifndef CAIS_NOC_NETWORK_HH
#define CAIS_NOC_NETWORK_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "noc/credit_link.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"

namespace cais
{

class CausalProfiler;
class ShardedEventQueue;

/** A fully wired multi-GPU fabric. */
class Fabric
{
  public:
    /**
     * @p shq selects sharded execution (DESIGN.md §6f): every switch
     * is placed on its domain's shard — its chip and compute complex
     * run on that shard's queue — and each link is built on its
     * sender's queue with the sink's queue bound for split delivery.
     * Null (the default) keeps everything on @p eq, bit-identical to
     * the historical single-queue build.
     */
    Fabric(EventQueue &eq, const FabricParams &params,
           ShardedEventQueue *shq = nullptr);

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /**
     * Number of conservative-PDES domains this shape partitions
     * into: the host+GPU domain plus one per leaf group and one for
     * the whole spine tier (multi-tier), or one per switch (flat).
     * More shards than domains cannot help.
     */
    static int numDomains(const FabricParams &params);

    /**
     * Shard (in [1, shards)) hosting switch @p s when the fabric is
     * split over @p shards >= 2 shards: domains round-robin over the
     * non-primary shards. Shard 0 always hosts the GPUs and the host.
     */
    static int switchShard(const FabricParams &params, SwitchId s,
                           int shards);

    /**
     * Conservative lookahead for @p shards shards: the minimum
     * latency over every link that crosses shards. GPU<->switch
     * links always cross, so this is at most linkLatency; tier links
     * only count when some leaf lands off the spine shard. Zero
     * means the shape cannot be sharded — there is no latency to
     * hide a window behind.
     */
    static Cycle crossShardLookahead(const FabricParams &params,
                                     int shards);

    /** Attach the GPU's packet sink to all its downlinks. */
    void attachGpu(GpuId g, PacketSink *sink);

    /**
     * Attach the causal profiler (DESIGN.md §6g) to every link and
     * switch chip. Links get dense profile-node ids in forEachLink
     * visit order (deterministic across runs and shard counts), with
     * their names registered for the artifact/flame-lane output.
     */
    void setProfiler(CausalProfiler *pr);

    /**
     * Inject a packet from GPU @p g. The serving switch is chosen
     * deterministically: group hash for sync traffic, address hash
     * for everything else, unless pkt.dst already names a switch.
     */
    void sendFromGpu(GpuId g, Packet &&pkt);

    /** Rail/switch index owning @p a: a switch id on flat shapes, a
     *  rail index within each group on multi-tier ones. */
    SwitchId routeAddr(Addr a) const { return route.switchForAddr(a); }
    SwitchId routeGroup(GroupId g) const { return route.switchForGroup(g); }

    int switchNodeId(SwitchId s) const { return p.numGpus + s; }
    bool isSwitchNode(int node) const
    {
        return node >= p.numGpus && node < p.numGpus + p.numSwitches;
    }

    /** Node id of the switch that merges @p addr for GPU @p g: the
     *  hashed switch on flat shapes, the GPU's group leaf on the
     *  hashed rail on multi-tier ones. */
    int mergeNode(GpuId g, Addr addr) const;

    /** Node id of the switch that coordinates @p group for @p g. */
    int syncNode(GpuId g, GroupId group) const;

    /** Node id of the spine owning @p addr (multi-tier only). */
    int spineNodeForAddr(Addr addr) const;

    /** Node id of the spine coordinating @p group (multi-tier only). */
    int spineNodeForGroup(GroupId group) const;

    SwitchChip &switchChip(SwitchId s) { return *switches[s]; }
    const SwitchChip &switchChip(SwitchId s) const { return *switches[s]; }

    /** Uplinks per GPU (rails on multi-tier shapes). */
    int uplinksPerGpu() const { return p.uplinksPerGpu(); }

    /** GPU @p g's @p i-th uplink: to switch i (flat) or rail i. */
    CreditLink &uplink(GpuId g, int i);
    const CreditLink &uplink(GpuId g, int i) const;

    /** Downlink from switch @p s to GPU @p g; on multi-tier shapes
     *  @p s must be a leaf of @p g's group. */
    CreditLink &downlink(SwitchId s, GpuId g);
    const CreditLink &downlink(SwitchId s, GpuId g) const;

    /** Leaf->spine / spine->leaf tier links (multi-tier only). */
    CreditLink &tierUplink(int leaf, int spine);
    CreditLink &tierDownlink(int spine, int leaf);

    /**
     * Visit every link with a stable name, GPU-facing links first in
     * (gpu, uplink-index, up-then-down) order, then tier links. The
     * flat visit order matches the historical per-link diagnostics
     * order of cais-verify V2.
     */
    void forEachLink(
        const std::function<void(const CreditLink &)> &fn) const;

    /**
     * Sender/sink node ids of one link, in the same node-id space the
     * packets use (GPUs then switchNodeId()). cais-verify V6/V7 map
     * them to shard domains to recompute the cross-shard lookahead.
     */
    struct LinkEndpoints
    {
        CAIS_OWNED_BY_DOMAIN(message);

        int srcNode = invalidId;
        int dstNode = invalidId;
    };

    /** forEachLink variant also reporting each link's endpoints, in
     *  the same visit order as the name-only overload. */
    void forEachLink(
        const std::function<void(const CreditLink &,
                                 const LinkEndpoints &)> &fn) const;

    const FabricParams &params() const { return p; }
    const DeterministicRouting &routing() const { return route; }

    /**
     * The simulation-wide packet-id source. Owned here (one per
     * System) so ids restart from 1 for every run and concurrent
     * Systems stay bit-identical to serial execution.
     */
    PacketIdAllocator &packetIds() { return pktIds; }

    /**
     * Mean link utilization in [t0, t1) as a fraction of capacity,
     * averaged over all links and both directions (the metric of
     * Fig. 15).
     */
    double avgUtilization(Cycle t0, Cycle t1) const;

    /** Same, restricted to one direction (up = GPU-to-switch). */
    double dirUtilization(bool up, Cycle t0, Cycle t1) const;

    /**
     * Per-bin utilization fraction averaged over all links for bins
     * covering [t0, t1) (the series of Fig. 16).
     */
    std::vector<double> utilizationSeries(Cycle t0, Cycle t1) const;

    /** Total wire bytes moved on all links. */
    std::uint64_t totalWireBytes() const;

    /**
     * Register every link's scalar counters under
     * prefix.up.g<G>.s<S>.* and prefix.dn.s<S>.g<G>.* (multi-tier
     * shapes add prefix.t_up.l<L>.k<K>.* / prefix.t_dn.k<K>.l<L>.*;
     * the switch chips register separately under the per-switch
     * subtree).
     */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    CAIS_OWNED_BY_DOMAIN(host);

    void buildFlat();
    void buildTiered();

    /** Queue switch @p s schedules on: its shard's, or eq unsharded. */
    EventQueue &switchQueue(SwitchId s);
    int spinePort(const Packet &pkt) const;
    int railFor(const Packet &pkt) const;

    double linkSetUtilization(const std::vector<const CreditLink *> &ls,
                              Cycle t0, Cycle t1) const;
    std::vector<const CreditLink *> allLinks(int dir) const; // 0 up,1 dn,2 both

    EventQueue &eq;
    ShardedEventQueue *shq; ///< null when running single-queue
    FabricParams p;
    DeterministicRouting route;
    PacketIdAllocator pktIds;

    std::vector<std::unique_ptr<SwitchChip>> switches;
    // Flat: up[g][s]: GPU g -> switch s; down[s][g]: switch s -> GPU g.
    // Tiered: up[g][r]: GPU g -> rail r of its group; down[l][i]:
    // leaf l -> its i-th local GPU; tierUp[l][k]: leaf l -> spine k;
    // tierDown[k][l]: spine k -> leaf l.
    std::vector<std::vector<std::unique_ptr<CreditLink>>> up;
    std::vector<std::vector<std::unique_ptr<CreditLink>>> down;
    std::vector<std::vector<std::unique_ptr<CreditLink>>> tierUp;
    std::vector<std::vector<std::unique_ptr<CreditLink>>> tierDown;
};

} // namespace cais

#endif // CAIS_NOC_NETWORK_HH
