/**
 * @file
 * The assembled NVLink/NVSwitch fabric: switches, links, deterministic
 * routing, GPU attachment points, and fleet-wide utilization probes.
 */

#ifndef CAIS_NOC_NETWORK_HH
#define CAIS_NOC_NETWORK_HH

#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "noc/credit_link.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"

namespace cais
{

/** A fully wired multi-GPU fabric. */
class Fabric
{
  public:
    Fabric(EventQueue &eq, const FabricParams &params);

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /** Attach the GPU's packet sink to all its downlinks. */
    void attachGpu(GpuId g, PacketSink *sink);

    /**
     * Inject a packet from GPU @p g. The serving switch is chosen
     * deterministically: group hash for sync traffic, address hash
     * for everything else, unless pkt.dst already names a switch.
     */
    void sendFromGpu(GpuId g, Packet &&pkt);

    SwitchId routeAddr(Addr a) const { return route.switchForAddr(a); }
    SwitchId routeGroup(GroupId g) const { return route.switchForGroup(g); }

    int switchNodeId(SwitchId s) const { return p.numGpus + s; }
    bool isSwitchNode(int node) const
    {
        return node >= p.numGpus && node < p.numGpus + p.numSwitches;
    }

    SwitchChip &switchChip(SwitchId s) { return *switches[s]; }
    const SwitchChip &switchChip(SwitchId s) const { return *switches[s]; }

    CreditLink &uplink(GpuId g, SwitchId s);
    CreditLink &downlink(SwitchId s, GpuId g);
    const CreditLink &uplink(GpuId g, SwitchId s) const;
    const CreditLink &downlink(SwitchId s, GpuId g) const;

    const FabricParams &params() const { return p; }
    const DeterministicRouting &routing() const { return route; }

    /**
     * The simulation-wide packet-id source. Owned here (one per
     * System) so ids restart from 1 for every run and concurrent
     * Systems stay bit-identical to serial execution.
     */
    PacketIdAllocator &packetIds() { return pktIds; }

    /**
     * Mean link utilization in [t0, t1) as a fraction of capacity,
     * averaged over all links and both directions (the metric of
     * Fig. 15).
     */
    double avgUtilization(Cycle t0, Cycle t1) const;

    /** Same, restricted to one direction (up = GPU-to-switch). */
    double dirUtilization(bool up, Cycle t0, Cycle t1) const;

    /**
     * Per-bin utilization fraction averaged over all links for bins
     * covering [t0, t1) (the series of Fig. 16).
     */
    std::vector<double> utilizationSeries(Cycle t0, Cycle t1) const;

    /** Total wire bytes moved on all links. */
    std::uint64_t totalWireBytes() const;

    /**
     * Register every link's scalar counters under
     * prefix.up.g<G>.s<S>.* and prefix.dn.s<S>.g<G>.* (the switch
     * chips register separately under the per-switch subtree).
     */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    double linkSetUtilization(const std::vector<const CreditLink *> &ls,
                              Cycle t0, Cycle t1) const;
    std::vector<const CreditLink *> allLinks(int dir) const; // 0 up,1 dn,2 both

    EventQueue &eq;
    FabricParams p;
    DeterministicRouting route;
    PacketIdAllocator pktIds;

    std::vector<std::unique_ptr<SwitchChip>> switches;
    // up[g][s]: GPU g -> switch s; down[s][g]: switch s -> GPU g.
    std::vector<std::vector<std::unique_ptr<CreditLink>>> up;
    std::vector<std::vector<std::unique_ptr<CreditLink>>> down;
};

} // namespace cais

#endif // CAIS_NOC_NETWORK_HH
