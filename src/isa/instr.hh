/**
 * @file
 * PTX-level instruction descriptors for the memory/communication
 * operations CAIS reasons about, including the stock NVLS multimem
 * instructions and the paper's `ld.cais` / `red.cais` extensions
 * (Fig. 4).
 *
 * Instructions here are *descriptors*, not executable code: the GPU
 * model interprets them per thread block, and the compiler pass
 * rewrites eligible plain accesses into their CAIS variants.
 */

#ifndef CAIS_ISA_INSTR_HH
#define CAIS_ISA_INSTR_HH

#include <cstdint>
#include <string>

#include "isa/address_expr.hh"

namespace cais
{

/** Opcodes of the modelled memory/communication instructions. */
enum class Opcode : std::uint8_t
{
    ldGlobal,          ///< plain load (possibly remote via P2P)
    stGlobal,          ///< plain store (possibly remote via P2P)
    redGlobal,         ///< plain reduction (read-modify-write)
    multimemSt,        ///< NVLS push-mode multicast store
    multimemLdReduce,  ///< NVLS pull-mode load-and-reduce
    multimemRed,       ///< NVLS push-mode reduction
    ldCais,            ///< CAIS mergeable load (pull mode)
    redCais,           ///< CAIS mergeable reduction (push mode)
};

/** Communication mode of an opcode per Fig. 1(g) of the paper. */
enum class CommMode : std::uint8_t { local, push, pull };

/** Memory semantic (what the compute kernel requires). */
enum class MemSemantic : std::uint8_t { read, write };

/** Render an opcode in PTX-like syntax. */
const char *opcodeName(Opcode op);

/** True for the paper's CAIS-flagged instructions. */
bool isCais(Opcode op);

/** True for stock NVLS multimem instructions. */
bool isMultimem(Opcode op);

/** Push/pull/local classification (Fig. 1(g)). */
CommMode commMode(Opcode op);

/** Read/write classification. */
MemSemantic memSemantic(Opcode op);

/**
 * One memory/communication instruction of a kernel, parameterized by
 * an affine address expression; `bytesPerTb` is the total data touched
 * by one thread block through this instruction.
 */
struct MemInstr
{
    Opcode op = Opcode::ldGlobal;
    AddressExpr addr;
    std::uint64_t bytesPerTb = 0;

    /** The access may resolve to a peer GPU's memory (global shared
     *  tensor), making it a candidate for in-switch merging. */
    bool remote = false;

    /**
     * The 1-bit CAIS flag of Fig. 4. Set by the compiler's lowering
     * pass; the switch only considers flagged requests for merging.
     */
    bool caisFlag = false;

    /** Diagnostic rendering, e.g. "ld.cais [128 + 64*blockIdx.x]". */
    std::string str() const;
};

} // namespace cais

#endif // CAIS_ISA_INSTR_HH
