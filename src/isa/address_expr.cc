#include "isa/address_expr.hh"

#include <sstream>

#include "common/log.hh"

namespace cais
{

namespace
{

const char *
varName(AddrVar v)
{
    switch (v) {
      case AddrVar::gpuId: return "gpuId";
      case AddrVar::blockIdxX: return "blockIdx.x";
      case AddrVar::blockIdxY: return "blockIdx.y";
      case AddrVar::threadIdxX: return "threadIdx.x";
      case AddrVar::chunkIdx: return "chunk";
      default: return "?";
    }
}

} // namespace

std::int64_t
AddrBindings::get(AddrVar v) const
{
    switch (v) {
      case AddrVar::gpuId: return gpuId;
      case AddrVar::blockIdxX: return blockIdxX;
      case AddrVar::blockIdxY: return blockIdxY;
      case AddrVar::threadIdxX: return threadIdxX;
      case AddrVar::chunkIdx: return chunkIdx;
      default: panic("bad AddrVar");
    }
}

AddressExpr
AddressExpr::constant(std::int64_t c)
{
    AddressExpr e;
    e.konst = c;
    return e;
}

AddressExpr
AddressExpr::term(AddrVar v, std::int64_t coeff)
{
    AddressExpr e;
    e.coeffs[static_cast<int>(v)] = coeff;
    return e;
}

AddressExpr
AddressExpr::operator+(const AddressExpr &o) const
{
    AddressExpr e = *this;
    for (std::size_t i = 0; i < coeffs.size(); ++i)
        e.coeffs[i] += o.coeffs[i];
    e.konst += o.konst;
    return e;
}

AddressExpr
AddressExpr::operator-(const AddressExpr &o) const
{
    AddressExpr e = *this;
    for (std::size_t i = 0; i < coeffs.size(); ++i)
        e.coeffs[i] -= o.coeffs[i];
    e.konst -= o.konst;
    return e;
}

AddressExpr
AddressExpr::scaled(std::int64_t k) const
{
    AddressExpr e = *this;
    for (auto &c : e.coeffs)
        c *= k;
    e.konst *= k;
    return e;
}

AddressExpr &
AddressExpr::addTerm(AddrVar v, std::int64_t coeff)
{
    coeffs[static_cast<int>(v)] += coeff;
    return *this;
}

AddressExpr &
AddressExpr::addConst(std::int64_t c)
{
    konst += c;
    return *this;
}

std::int64_t
AddressExpr::coeff(AddrVar v) const
{
    return coeffs[static_cast<int>(v)];
}

std::int64_t
AddressExpr::eval(const AddrBindings &b) const
{
    std::int64_t v = konst;
    for (int i = 0; i < static_cast<int>(AddrVar::numVars); ++i)
        v += coeffs[i] * b.get(static_cast<AddrVar>(i));
    return v;
}

std::string
AddressExpr::str() const
{
    std::ostringstream os;
    os << konst;
    for (int i = 0; i < static_cast<int>(AddrVar::numVars); ++i) {
        if (coeffs[i] != 0)
            os << " + " << coeffs[i] << "*"
               << varName(static_cast<AddrVar>(i));
    }
    return os.str();
}

bool
AddressExpr::operator==(const AddressExpr &o) const
{
    return coeffs == o.coeffs && konst == o.konst;
}

} // namespace cais
