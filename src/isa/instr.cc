#include "isa/instr.hh"

#include <sstream>

#include "common/log.hh"

namespace cais
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ldGlobal: return "ld.global";
      case Opcode::stGlobal: return "st.global";
      case Opcode::redGlobal: return "red.global";
      case Opcode::multimemSt: return "multimem.st";
      case Opcode::multimemLdReduce: return "multimem.ld_reduce";
      case Opcode::multimemRed: return "multimem.red";
      case Opcode::ldCais: return "ld.cais";
      case Opcode::redCais: return "red.cais";
      default: panic("bad opcode");
    }
}

bool
isCais(Opcode op)
{
    return op == Opcode::ldCais || op == Opcode::redCais;
}

bool
isMultimem(Opcode op)
{
    return op == Opcode::multimemSt || op == Opcode::multimemLdReduce ||
           op == Opcode::multimemRed;
}

CommMode
commMode(Opcode op)
{
    switch (op) {
      case Opcode::ldGlobal:
      case Opcode::stGlobal:
      case Opcode::redGlobal:
        return CommMode::local;
      case Opcode::multimemSt:
      case Opcode::multimemRed:
      case Opcode::redCais:
        return CommMode::push;
      case Opcode::multimemLdReduce:
      case Opcode::ldCais:
        return CommMode::pull;
      default: panic("bad opcode");
    }
}

MemSemantic
memSemantic(Opcode op)
{
    switch (op) {
      case Opcode::ldGlobal:
      case Opcode::multimemLdReduce:
      case Opcode::ldCais:
        return MemSemantic::read;
      case Opcode::stGlobal:
      case Opcode::redGlobal:
      case Opcode::multimemSt:
      case Opcode::multimemRed:
      case Opcode::redCais:
        return MemSemantic::write;
      default: panic("bad opcode");
    }
}

std::string
MemInstr::str() const
{
    std::ostringstream os;
    os << opcodeName(op) << " [" << addr.str() << "] ("
       << bytesPerTb << " B/TB";
    if (caisFlag)
        os << ", cais";
    os << ")";
    return os.str();
}

} // namespace cais
