/**
 * @file
 * Affine address expressions over kernel launch symbols.
 *
 * The CAIS compiler pass (Sec. III-B of the paper) performs static
 * index analysis on the address expressions of memory instructions to
 * decide whether an access is GPU-invariant: if the expression does
 * not depend on the GPU id, thread blocks with equal blockIdx on
 * different GPUs touch identical addresses and can be grouped for
 * in-switch merging.
 *
 * We model address expressions as affine combinations
 *     c0 + sum_i coeff_i * var_i
 * of the symbolic variables below, which covers the tiled GEMM /
 * LayerNorm / collective kernels the paper studies.
 */

#ifndef CAIS_ISA_ADDRESS_EXPR_HH
#define CAIS_ISA_ADDRESS_EXPR_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace cais
{

/** Symbolic variables an address expression may reference. */
enum class AddrVar : int
{
    gpuId = 0,     ///< device id within the TP group
    blockIdxX = 1, ///< CUDA blockIdx.x
    blockIdxY = 2, ///< CUDA blockIdx.y
    threadIdxX = 3,///< CUDA threadIdx.x (coarse; per-warp offsets)
    chunkIdx = 4,  ///< loop induction variable over K-chunks
    numVars = 5
};

/** Variable bindings used to evaluate an expression. */
struct AddrBindings
{
    std::int64_t gpuId = 0;
    std::int64_t blockIdxX = 0;
    std::int64_t blockIdxY = 0;
    std::int64_t threadIdxX = 0;
    std::int64_t chunkIdx = 0;

    std::int64_t get(AddrVar v) const;
};

/** Affine expression c0 + sum coeff[v] * v. */
class AddressExpr
{
  public:
    AddressExpr() { coeffs.fill(0); }

    /** Expression consisting of just a constant. */
    static AddressExpr constant(std::int64_t c);

    /** Expression consisting of coeff * var. */
    static AddressExpr term(AddrVar v, std::int64_t coeff);

    AddressExpr operator+(const AddressExpr &o) const;
    AddressExpr operator-(const AddressExpr &o) const;

    /** Scale every coefficient and the constant by @p k. */
    AddressExpr scaled(std::int64_t k) const;

    /** Add @p coeff * @p v in place. */
    AddressExpr &addTerm(AddrVar v, std::int64_t coeff);

    /** Add a constant in place. */
    AddressExpr &addConst(std::int64_t c);

    std::int64_t coeff(AddrVar v) const;
    std::int64_t constantPart() const { return konst; }

    /** True if the coefficient of @p v is non-zero. */
    bool dependsOn(AddrVar v) const { return coeff(v) != 0; }

    /**
     * Core of the paper's static index analysis: the access is
     * GPU-invariant iff the expression has no gpuId term.
     */
    bool gpuInvariant() const { return !dependsOn(AddrVar::gpuId); }

    /** Evaluate under the given bindings. */
    std::int64_t eval(const AddrBindings &b) const;

    /** Human-readable rendering for diagnostics. */
    std::string str() const;

    bool operator==(const AddressExpr &o) const;

  private:
    std::array<std::int64_t, static_cast<int>(AddrVar::numVars)> coeffs{};
    std::int64_t konst = 0;
};

} // namespace cais

#endif // CAIS_ISA_ADDRESS_EXPR_HH
