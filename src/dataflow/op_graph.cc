#include "dataflow/op_graph.hh"

#include <sstream>

#include "common/log.hh"

namespace cais
{

bool
isCommOp(OpKind k)
{
    return k == OpKind::allReduce || k == OpKind::allGather ||
           k == OpKind::reduceScatter;
}

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::gemmColParallel: return "gemm.col";
      case OpKind::gemmRowParallel: return "gemm.row";
      case OpKind::layerNorm: return "layernorm";
      case OpKind::elementwise: return "elementwise";
      case OpKind::attentionCore: return "attention";
      case OpKind::allReduce: return "allreduce";
      case OpKind::allGather: return "allgather";
      case OpKind::reduceScatter: return "reducescatter";
      default: return "?";
    }
}

double
OpNode::flops() const
{
    switch (kind) {
      case OpKind::gemmColParallel:
      case OpKind::gemmRowParallel:
        return 2.0 * static_cast<double>(rows) *
               static_cast<double>(cols) * static_cast<double>(inner);
      case OpKind::attentionCore:
        // QK^T and PV: two GEMMs over the sequence per head; `cols`
        // is the hidden dimension so head_dim factors cancel.
        return 4.0 * static_cast<double>(rows) *
               static_cast<double>(inner) * static_cast<double>(cols);
      case OpKind::layerNorm:
      case OpKind::elementwise:
        return 8.0 * static_cast<double>(rows) *
               static_cast<double>(cols);
      default:
        return 0.0;
    }
}

OpId
OpGraph::addOp(OpKind kind, std::string name, std::int64_t rows,
               std::int64_t cols, std::int64_t inner,
               std::vector<OpId> inputs)
{
    OpNode n;
    n.id = static_cast<OpId>(nodes.size());
    n.kind = kind;
    n.name = std::move(name);
    n.rows = rows;
    n.cols = cols;
    n.inner = inner;
    n.inputs = std::move(inputs);
    nodes.push_back(std::move(n));
    return nodes.back().id;
}

const OpNode &
OpGraph::node(OpId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= nodes.size())
        panic("op graph: bad op id %d", id);
    return nodes[static_cast<std::size_t>(id)];
}

OpNode &
OpGraph::node(OpId id)
{
    return const_cast<OpNode &>(
        static_cast<const OpGraph *>(this)->node(id));
}

std::vector<OpId>
OpGraph::consumers(OpId id) const
{
    std::vector<OpId> out;
    for (const auto &n : nodes)
        for (OpId in : n.inputs)
            if (in == id)
                out.push_back(n.id);
    return out;
}

std::vector<OpId>
OpGraph::topoOrder() const
{
    std::vector<OpId> order;
    order.reserve(nodes.size());
    for (const auto &n : nodes)
        order.push_back(n.id);
    return order;
}

void
OpGraph::validate() const
{
    for (const auto &n : nodes) {
        for (OpId in : n.inputs) {
            if (in < 0 || in >= n.id)
                panic("op %s: input %d is not an earlier node",
                      n.name.c_str(), in);
        }
        if (n.rows <= 0 || n.cols <= 0)
            panic("op %s: bad shape", n.name.c_str());
    }
}

std::string
OpGraph::str() const
{
    std::ostringstream os;
    for (const auto &n : nodes) {
        os << n.id << ": " << opKindName(n.kind) << " " << n.name
           << " [" << n.rows << "x" << n.cols;
        if (n.inner)
            os << " k=" << n.inner;
        os << "] <-";
        for (OpId in : n.inputs)
            os << " " << in;
        os << "\n";
    }
    return os.str();
}

} // namespace cais
