/**
 * @file
 * Traffic control for asymmetric kernel overlapping (Sec. III-C.2):
 * CAIS places load and reduction traffic on separate virtual channels
 * with round-robin arbitration so neither class suffers head-of-line
 * blocking when GEMM-RS and AG-GEMM run concurrently. Disabling it
 * (the paper's CAIS-Partial configuration, Figs. 15-16) collapses the
 * data classes onto a single VC.
 */

#ifndef CAIS_DATAFLOW_TRAFFIC_CONTROL_HH
#define CAIS_DATAFLOW_TRAFFIC_CONTROL_HH

#include "noc/topology.hh"

namespace cais
{

/** Strategy-level traffic-control settings. */
struct TrafficControlConfig
{
    /** Separate VCs for load vs reduction traffic (CAIS default). */
    bool separateDataVcs = true;

    /** Apply to a fabric configuration before construction. */
    void apply(FabricParams &fp) const;
};

} // namespace cais

#endif // CAIS_DATAFLOW_TRAFFIC_CONTROL_HH
