#include "dataflow/traffic_control.hh"

namespace cais
{

void
TrafficControlConfig::apply(FabricParams &fp) const
{
    fp.sw.unifiedDataVc = !separateDataVcs;
}

} // namespace cais
