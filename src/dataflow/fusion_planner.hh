/**
 * @file
 * Graph-level dataflow optimizer (Sec. III-C).
 *
 * Given an operator graph, the planner decides, per op:
 *  - whether consumers attach at tile granularity (deep fusion:
 *    consumer TBs launch as soon as their input tiles are ready,
 *    Fig. 9d) or behind a kernel-level barrier;
 *  - an SM partition for Asymmetric Kernel Overlapping (Fig. 9e):
 *    kernels with complementary link-direction profiles (GEMM-RS is
 *    GPU-to-switch heavy, AG-GEMM switch-to-GPU heavy, Fig. 10) are
 *    co-scheduled on disjoint SM halves so both link directions stay
 *    busy.
 */

#ifndef CAIS_DATAFLOW_FUSION_PLANNER_HH
#define CAIS_DATAFLOW_FUSION_PLANNER_HH

#include <utility>
#include <vector>

#include "dataflow/op_graph.hh"

namespace cais
{

/** Dominant fabric direction of an op's CAIS realization. */
enum class TrafficDir : std::uint8_t
{
    none,        ///< no fabric traffic
    gpuToSwitch, ///< reduction-dominated (GEMM-RS)
    switchToGpu, ///< load-dominated (AG-GEMM)
    balanced,    ///< symmetric (AllReduce)
};

const char *trafficDirName(TrafficDir d);

/** Per-op scheduling decision. */
struct OpSchedule
{
    OpId op = invalidId;
    bool tileLevelDeps = false;
    double smFrom = 0.0;
    double smTo = 1.0;
    TrafficDir dir = TrafficDir::none;

    /** Partner in an asymmetric overlap pair (invalidId if none). */
    OpId overlapsWith = invalidId;
};

/** Whole-graph plan. */
struct FusionPlan
{
    std::vector<OpSchedule> sched; ///< indexed by op id
    std::vector<std::pair<OpId, OpId>> asymmetricPairs;

    const OpSchedule &of(OpId id) const
    {
        return sched[static_cast<std::size_t>(id)];
    }
};

/** Optimizer knobs. */
struct FusionOptions
{
    /** Deep kernel fusion via TB-level dependencies. */
    bool enableTileDeps = true;

    /** Asymmetric kernel overlapping (SM partitioning). */
    bool enableAsymmetricOverlap = true;

    /** Producer-to-consumer distance searched for pairs. */
    int maxPairDistance = 6;
};

/** The optimizer. */
class FusionPlanner
{
  public:
    FusionPlan plan(const OpGraph &g,
                    const FusionOptions &opt = FusionOptions()) const;

    /** Direction profile of one op under the CAIS realization. */
    static TrafficDir classify(const OpGraph &g, OpId id);
};

} // namespace cais

#endif // CAIS_DATAFLOW_FUSION_PLANNER_HH
