#include "dataflow/fusion_planner.hh"

#include "common/log.hh"

namespace cais
{

const char *
trafficDirName(TrafficDir d)
{
    switch (d) {
      case TrafficDir::none: return "none";
      case TrafficDir::gpuToSwitch: return "G2S";
      case TrafficDir::switchToGpu: return "S2G";
      case TrafficDir::balanced: return "balanced";
      default: return "?";
    }
}

TrafficDir
FusionPlanner::classify(const OpGraph &g, OpId id)
{
    const OpNode &n = g.node(id);
    switch (n.kind) {
      case OpKind::reduceScatter:
        return TrafficDir::gpuToSwitch;
      case OpKind::allGather:
        return TrafficDir::switchToGpu;
      case OpKind::allReduce:
        return TrafficDir::balanced;
      case OpKind::gemmRowParallel:
        // A row-parallel GEMM feeding a reduction pushes partial
        // tiles upstream (red.cais): G2S heavy.
        for (OpId c : g.consumers(id)) {
            OpKind k = g.node(c).kind;
            if (k == OpKind::reduceScatter || k == OpKind::allReduce)
                return TrafficDir::gpuToSwitch;
        }
        return TrafficDir::none;
      case OpKind::gemmColParallel:
        // A col-parallel GEMM consuming gathered activations pulls
        // remote tiles (ld.cais): S2G heavy.
        for (OpId in : n.inputs) {
            OpKind k = g.node(in).kind;
            if (k == OpKind::allGather || k == OpKind::allReduce)
                return TrafficDir::switchToGpu;
        }
        return TrafficDir::none;
      default:
        return TrafficDir::none;
    }
}

FusionPlan
FusionPlanner::plan(const OpGraph &g, const FusionOptions &opt) const
{
    FusionPlan p;
    p.sched.resize(g.size());

    for (OpId id = 0; id < static_cast<OpId>(g.size()); ++id) {
        OpSchedule &s = p.sched[static_cast<std::size_t>(id)];
        s.op = id;
        s.dir = classify(g, id);
        s.tileLevelDeps = opt.enableTileDeps;
    }

    if (!opt.enableAsymmetricOverlap)
        return p;

    // Pair each G2S-heavy GEMM with the nearest downstream S2G-heavy
    // GEMM reachable within maxPairDistance producer-consumer hops.
    for (OpId a = 0; a < static_cast<OpId>(g.size()); ++a) {
        if (p.of(a).dir != TrafficDir::gpuToSwitch)
            continue;
        if (g.node(a).kind != OpKind::gemmRowParallel)
            continue;

        std::vector<OpId> frontier{a};
        for (int hop = 0; hop < opt.maxPairDistance; ++hop) {
            std::vector<OpId> next;
            for (OpId f : frontier) {
                for (OpId c : g.consumers(f)) {
                    if (p.of(c).dir == TrafficDir::switchToGpu &&
                        g.node(c).kind == OpKind::gemmColParallel &&
                        p.of(c).overlapsWith == invalidId &&
                        p.of(a).overlapsWith == invalidId) {
                        auto &sa =
                            p.sched[static_cast<std::size_t>(a)];
                        auto &sc =
                            p.sched[static_cast<std::size_t>(c)];
                        sa.overlapsWith = c;
                        sc.overlapsWith = a;
                        sa.smFrom = 0.0;
                        sa.smTo = 0.5;
                        sc.smFrom = 0.5;
                        sc.smTo = 1.0;
                        p.asymmetricPairs.emplace_back(a, c);
                    }
                    next.push_back(c);
                }
            }
            frontier = std::move(next);
            if (frontier.empty())
                break;
        }
    }
    return p;
}

} // namespace cais
