/**
 * @file
 * Logical operator dataflow graph (DFG) of a tensor-parallel model
 * region. The workload layer builds these graphs (transformer layers
 * or the paper's L1-L4 sub-layers); execution strategies lower them
 * into kernels, choosing how each communication op is realized
 * (NVLS collective, software pipeline, T3 track-&-trigger, CAIS
 * in-kernel loads/reductions, ...).
 */

#ifndef CAIS_DATAFLOW_OP_GRAPH_HH
#define CAIS_DATAFLOW_OP_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cais
{

/** Operator kinds appearing in TP transformer graphs. */
enum class OpKind : std::uint8_t
{
    gemmColParallel, ///< weights sharded on N; local output shard
    gemmRowParallel, ///< weights sharded on K; partial output (needs
                     ///< reduction)
    layerNorm,       ///< row-wise normalization (sequence-sharded)
    elementwise,     ///< GeLU / dropout / residual add
    attentionCore,   ///< softmax(QK^T)V per local head (no TP comm)
    allReduce,       ///< f/f-bar of basic TP
    allGather,       ///< g-bar of TP+SP
    reduceScatter,   ///< g of TP+SP
};

/** True for collective-communication operators. */
bool isCommOp(OpKind k);

/** Human-readable op kind. */
const char *opKindName(OpKind k);

/** One node of the DFG. */
struct OpNode
{
    OpId id = invalidId;
    OpKind kind = OpKind::elementwise;
    std::string name;

    /**
     * Shape semantics (full, unsharded logical sizes):
     *  - GEMMs: rows x cols output with inner reduction dim.
     *  - layerNorm/elementwise: rows x cols tensor.
     *  - collectives: rows x cols tensor moved.
     *  - attentionCore: rows = batch*seq, cols = hidden, inner = seq.
     */
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t inner = 0;

    /** Element size in bytes (fp16 = 2). */
    int elemBytes = 2;

    /** FLOP multiplier (backward passes fuse dgrad + wgrad: 2x). */
    double flopScale = 1.0;

    /** Output rows are sequence-sharded across GPUs (TP+SP). */
    bool rowSharded = false;

    /** Output columns are sharded across GPUs (col-parallel GEMM). */
    bool colSharded = false;

    /** Producer ops this node consumes. */
    std::vector<OpId> inputs;

    std::uint64_t outputBytes() const
    {
        return static_cast<std::uint64_t>(rows) *
               static_cast<std::uint64_t>(cols) *
               static_cast<std::uint64_t>(elemBytes);
    }

    /** FLOPs of the full (unsharded) operator. */
    double flops() const;
};

/** The DFG container. */
class OpGraph
{
  public:
    OpId addOp(OpKind kind, std::string name, std::int64_t rows,
               std::int64_t cols, std::int64_t inner,
               std::vector<OpId> inputs);

    const OpNode &node(OpId id) const;
    OpNode &node(OpId id);
    std::size_t size() const { return nodes.size(); }
    const std::vector<OpNode> &ops() const { return nodes; }

    /** Ops that consume @p id. */
    std::vector<OpId> consumers(OpId id) const;

    /** Ids in topological order (insertion order must respect deps). */
    std::vector<OpId> topoOrder() const;

    /** Panic if inputs reference undefined or later nodes. */
    void validate() const;

    std::string str() const;

  private:
    std::vector<OpNode> nodes;
};

} // namespace cais

#endif // CAIS_DATAFLOW_OP_GRAPH_HH
