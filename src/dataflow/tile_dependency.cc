#include "dataflow/tile_dependency.hh"

#include <algorithm>

#include "analysis/causal_profile.hh"
#include "common/event_queue.hh"
#include "common/log.hh"

namespace cais
{

TileTracker::TileTracker(std::string name, int num_gpus, int num_tiles,
                         std::uint64_t need_bytes_per_tile)
    : trackerName(std::move(name)), gpus(num_gpus), tiles(num_tiles),
      need(need_bytes_per_tile),
      got(static_cast<std::size_t>(num_gpus) *
              static_cast<std::size_t>(num_tiles),
          0),
      relevant(got.size(), true),
      relevantCount(num_gpus * num_tiles)
{
    if (num_gpus < 1 || num_tiles < 1 || need == 0)
        panic("tracker %s: bad dimensions", trackerName.c_str());
}

void
TileTracker::setRelevance(std::function<bool(GpuId, int)> rel)
{
    relevantCount = 0;
    readyCount = 0;
    for (GpuId g = 0; g < gpus; ++g) {
        for (int t = 0; t < tiles; ++t) {
            bool r = rel(g, t);
            relevant[index(g, t)] = r;
            if (r) {
                ++relevantCount;
                if (got[index(g, t)] >= need)
                    ++readyCount;
            }
        }
    }
}

void
TileTracker::setProfiler(CausalProfiler *pr, int tracker_idx,
                         EventQueue *eq)
{
    prof = pr;
    profIdx = tracker_idx;
    profEq = eq;
    if (prof)
        firstContribAt.assign(got.size(), ~Cycle{0});
}

void
TileTracker::contribute(GpuId gpu, int tile, std::uint64_t bytes)
{
    if (gpu < 0 || gpu >= gpus || tile < 0 || tile >= tiles)
        panic("tracker %s: contribution out of range (gpu %d tile %d)",
              trackerName.c_str(), gpu, tile);
    std::size_t i = index(gpu, tile);
    bool was_ready = got[i] >= need;
    got[i] += bytes;
    if (prof && firstContribAt[i] == ~Cycle{0})
        firstContribAt[i] = profEq->now();
    if (was_ready || got[i] < need)
        return;

    if (relevant[i])
        ++readyCount;

    std::uint64_t tile_node = 0;
    if (prof) {
        // The tile accumulated contributions from the first arrival
        // until this crossing one made it ready; whoever delivered the
        // crossing bytes (the active cause) is the enabling event.
        tile_node = profnode::tile(profIdx, gpu, tile);
        prof->record(tile_node, WaitClass::depWait, firstContribAt[i],
                     profEq->now());
    }
    // Waiters (consumer-TB dispatch, kernel readiness) are enabled by
    // this tile becoming ready, not directly by the landing write.
    CausalProfiler::ScopedCause sc(prof, tile_node,
                                   prof ? profEq->now() : 0);

    std::uint64_t k = static_cast<std::uint64_t>(i);
    auto it = waiters.find(k);
    if (it != waiters.end()) {
        auto cbs = std::move(it->second);
        waiters.erase(it);
        for (auto &cb : cbs)
            cb();
    }
    checkComplete();
}

bool
TileTracker::ready(GpuId gpu, int tile) const
{
    return got[index(gpu, tile)] >= need;
}

bool
TileTracker::complete() const
{
    return readyCount >= relevantCount;
}

void
TileTracker::waitFor(GpuId gpu, int tile, std::function<void()> cb)
{
    if (ready(gpu, tile)) {
        cb();
        return;
    }
    waiters[static_cast<std::uint64_t>(index(gpu, tile))].push_back(
        std::move(cb));
}

void
TileTracker::waitComplete(std::function<void()> cb)
{
    if (complete()) {
        cb();
        return;
    }
    completeWaiters.push_back(std::move(cb));
}

void
TileTracker::checkComplete()
{
    if (!complete() || completeWaiters.empty())
        return;
    auto cbs = std::move(completeWaiters);
    completeWaiters.clear();
    for (auto &cb : cbs)
        cb();
}

double
TileTracker::progress() const
{
    if (relevantCount == 0)
        return 1.0;
    return static_cast<double>(readyCount) /
           static_cast<double>(relevantCount);
}

void
AddressMap::addRange(Addr base, std::uint64_t bytes,
                     TileTracker *tracker, int first_tile,
                     std::uint64_t bytes_per_tile)
{
    if (!tracker || bytes == 0 || bytes_per_tile == 0)
        panic("address map: bad range");
    ranges.push_back(Range{base, bytes, tracker, first_tile,
                           bytes_per_tile});
    dirty = true;
}

bool
AddressMap::dispatch(GpuId gpu, Addr addr, std::uint32_t bytes,
                     int contribs)
{
    if (dirty) {
        std::sort(ranges.begin(), ranges.end(),
                  [](const Range &a, const Range &b) {
            return a.base < b.base;
        });
        dirty = false;
    }

    // Find the last range with base <= addr.
    auto it = std::upper_bound(ranges.begin(), ranges.end(), addr,
                               [](Addr a, const Range &r) {
        return a < r.base;
    });
    if (it == ranges.begin()) {
        unmatched.inc();
        return false;
    }
    --it;
    if (addr >= it->base + it->bytes) {
        unmatched.inc();
        return false;
    }

    std::uint64_t factor = contribs > 0
        ? static_cast<std::uint64_t>(contribs) : 1;

    // Spread the payload over the tiles it covers.
    std::uint64_t off = addr - it->base;
    std::uint64_t end = std::min<std::uint64_t>(off + bytes, it->bytes);
    while (off < end) {
        std::uint64_t tile_off = off % it->bytesPerTile;
        std::uint64_t span =
            std::min(it->bytesPerTile - tile_off, end - off);
        int tile = it->firstTile +
                   static_cast<int>(off / it->bytesPerTile);
        it->tracker->contribute(gpu, tile, span * factor);
        off += span;
    }
    return true;
}

} // namespace cais
