/**
 * @file
 * Fine-grained TB(tile)-level dependency tracking (Sec. III-C.1).
 *
 * A TileTracker follows the readiness of one tensor's tiles at each
 * GPU, counted in *bytes contributed*: a tile is ready at a GPU once
 * the accumulated bytes reach tileBytes x needFactor (needFactor > 1
 * expresses reduction semantics: G partial contributions must land).
 * Producers contribute either locally (a TB finished computing) or
 * via the fabric (an AddressMap dispatches landing writes). Consumers
 * register waiters per (gpu, tile), enabling a consumer TB to launch
 * as soon as its inputs are available — before the producer kernel
 * finishes.
 */

#ifndef CAIS_DATAFLOW_TILE_DEPENDENCY_HH
#define CAIS_DATAFLOW_TILE_DEPENDENCY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace cais
{

class CausalProfiler;
class EventQueue;

/** Readiness tracker for one tensor across GPUs. */
class TileTracker
{
  public:
    /**
     * @param need_bytes_per_tile bytes required for readiness
     *        (tile bytes x contribution factor).
     */
    TileTracker(std::string name, int num_gpus, int num_tiles,
                std::uint64_t need_bytes_per_tile);

    /**
     * Restrict completeness to tiles relevant per GPU. By default
     * every (gpu, tile) pair is relevant; sharded tensors mark only
     * the home GPU of each tile.
     */
    void setRelevance(std::function<bool(GpuId, int)> relevant);

    /**
     * Attach the causal profiler (DESIGN.md §6g). @p tracker_idx is
     * this tracker's dense index in System creation order (the
     * profile-node id space); @p eq supplies timestamps. Readiness
     * crossings then record tile wait-for edges and hand the tile
     * node to waiter callbacks as their enabling cause.
     */
    void setProfiler(CausalProfiler *pr, int tracker_idx,
                     EventQueue *eq);

    /** Add @p bytes toward (gpu, tile). */
    void contribute(GpuId gpu, int tile, std::uint64_t bytes);

    bool ready(GpuId gpu, int tile) const;

    /** All relevant (gpu, tile) pairs ready. */
    bool complete() const;

    /**
     * Invoke @p cb once (gpu, tile) is ready (immediately if it
     * already is).
     */
    void waitFor(GpuId gpu, int tile, std::function<void()> cb);

    /** Invoke @p cb once the whole tensor is complete. */
    void waitComplete(std::function<void()> cb);

    const std::string &name() const { return trackerName; }
    int numTiles() const { return tiles; }
    int numGpus() const { return gpus; }
    std::uint64_t needBytesPerTile() const { return need; }

    /** Ready relevant pairs / total relevant pairs. */
    double progress() const;

  private:
    std::size_t index(GpuId g, int t) const
    {
        return static_cast<std::size_t>(g) *
               static_cast<std::size_t>(tiles) +
               static_cast<std::size_t>(t);
    }

    void checkComplete();

    std::string trackerName;
    int gpus;
    int tiles;
    std::uint64_t need;

    std::vector<std::uint64_t> got;
    std::vector<bool> relevant;
    int relevantCount;
    int readyCount = 0;

    std::unordered_map<std::uint64_t,
                       std::vector<std::function<void()>>> waiters;
    std::vector<std::function<void()>> completeWaiters;

    CausalProfiler *prof = nullptr;
    EventQueue *profEq = nullptr;
    int profIdx = 0;
    /** First-contribution cycle per (gpu, tile); ~0 = none yet. */
    std::vector<Cycle> firstContribAt;
};

/** Dispatches landing remote data to the owning tracker's tiles. */
class AddressMap
{
  public:
    /**
     * Register a contiguous range: tiles are laid out back-to-back,
     * tile (first_tile + k) covering
     * [base + k*bytes_per_tile, base + (k+1)*bytes_per_tile).
     */
    void addRange(Addr base, std::uint64_t bytes, TileTracker *tracker,
                  int first_tile, std::uint64_t bytes_per_tile);

    /**
     * Route an arrival at @p gpu to tracker tiles. @p contribs scales
     * the effective bytes (a merged reduction write carries several
     * contributions); 0 is treated as 1.
     * @return true if a range matched.
     */
    bool dispatch(GpuId gpu, Addr addr, std::uint32_t bytes,
                  int contribs);

    std::size_t numRanges() const { return ranges.size(); }
    std::uint64_t unmatchedArrivals() const { return unmatched.value(); }

  private:
    struct Range
    {
        Addr base;
        std::uint64_t bytes;
        TileTracker *tracker;
        int firstTile;
        std::uint64_t bytesPerTile;
    };

    /** Sorted by base for binary search. */
    std::vector<Range> ranges;
    bool dirty = false;
    Counter unmatched;
};

} // namespace cais

#endif // CAIS_DATAFLOW_TILE_DEPENDENCY_HH
