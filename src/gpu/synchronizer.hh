/**
 * @file
 * GPU-side synchronizer module (Fig. 8b): interfaces between the
 * TB/warp schedulers and the switch's Group Sync Table. It registers
 * pre-launch and pre-access synchronization requests and parks the
 * requesting thread blocks until the release signal arrives.
 */

#ifndef CAIS_GPU_SYNCHRONIZER_HH
#define CAIS_GPU_SYNCHRONIZER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "switchcompute/group_sync_table.hh" // SyncPhase

namespace cais
{

class GpuHub;

/** Per-GPU TB-group synchronization frontend. */
class Synchronizer : public Probe
{
  public:
    explicit Synchronizer(GpuId gpu);

    /** The hub transports our sync packets; set during wiring. */
    void setHub(GpuHub *h) { hub = h; }

    /**
     * Register with TB group @p group for phase @p phase; @p released
     * fires when the switch broadcasts the release.
     */
    void requestSync(GroupId group, SyncPhase phase, int expected,
                     std::function<void()> released);

    /** Release signal delivered by the hub. */
    void onRelease(GroupId group, SyncPhase phase);

    std::uint64_t requests() const { return reqs.value(); }
    std::uint64_t releases() const { return rels.value(); }
    std::size_t pendingCount() const { return pending.size(); }

    void
    registerMetrics(MetricRegistry &reg,
                    const std::string &prefix) const override
    {
        reg.addCounter(prefix + ".requests", &reqs);
        reg.addCounter(prefix + ".releases", &rels);
    }

  private:
    static std::uint64_t
    key(GroupId g, SyncPhase p)
    {
        return (static_cast<std::uint64_t>(g) << 1) |
               static_cast<std::uint64_t>(p);
    }

    CAIS_OWNED_BY_DOMAIN(host);

    GpuId gpu;
    GpuHub *hub = nullptr;
    std::unordered_map<std::uint64_t, std::function<void()>> pending;
    Counter reqs;
    Counter rels;
};

} // namespace cais

#endif // CAIS_GPU_SYNCHRONIZER_HH
