#include "gpu/sm.hh"

#include "common/log.hh"

namespace cais
{

namespace
{
constexpr Cycle slotFree = ~Cycle(0);
} // namespace

SmPool::SmPool(EventQueue &eq_, int num_sms, int ctas_per_sm)
    : eq(eq_), sms(num_sms),
      busyAt(static_cast<std::size_t>(num_sms * ctas_per_sm), slotFree),
      freeSlots(num_sms * ctas_per_sm)
{
    if (num_sms < 1 || ctas_per_sm < 1)
        panic("bad SM pool dimensions");
}

int
SmPool::acquire(double from, double to)
{
    int lo = static_cast<int>(from * sms);
    int hi = static_cast<int>(to * sms);
    if (hi <= lo)
        hi = lo + 1;
    for (std::size_t slot = 0; slot < busyAt.size(); ++slot) {
        int sm = smOfSlot(static_cast<int>(slot));
        if (sm < lo || sm >= hi)
            continue;
        if (busyAt[slot] == slotFree) {
            busyAt[slot] = eq.now();
            --freeSlots;
            return static_cast<int>(slot);
        }
    }
    return -1;
}

bool
SmPool::hasFree(double from, double to) const
{
    int lo = static_cast<int>(from * sms);
    int hi = static_cast<int>(to * sms);
    if (hi <= lo)
        hi = lo + 1;
    for (std::size_t slot = 0; slot < busyAt.size(); ++slot) {
        int sm = smOfSlot(static_cast<int>(slot));
        if (sm >= lo && sm < hi && busyAt[slot] == slotFree)
            return true;
    }
    return false;
}

void
SmPool::release(int slot)
{
    auto idx = static_cast<std::size_t>(slot);
    if (idx >= busyAt.size() || busyAt[idx] == slotFree)
        panic("releasing free SM slot %d", slot);
    accumulated += eq.now() - busyAt[idx];
    busyAt[idx] = slotFree;
    ++freeSlots;
}

Cycle
SmPool::busySlotCycles() const
{
    Cycle total = accumulated;
    Cycle now = eq.now();
    for (Cycle at : busyAt)
        if (at != slotFree)
            total += now - at;
    return total;
}

double
SmPool::utilization(Cycle t) const
{
    if (t == 0)
        return 0.0;
    double denom = static_cast<double>(busyAt.size()) *
                   static_cast<double>(t);
    return static_cast<double>(busySlotCycles()) / denom;
}

} // namespace cais
