#include "gpu/tb_scheduler.hh"

namespace cais
{

TbScheduler::TbScheduler(SmPool &pool_) : pool(pool_)
{
}

void
TbScheduler::enqueue(double from, double to, int priority,
                     std::function<void(int)> dispatch)
{
    buckets[{priority, from, to}].fifo.push_back(std::move(dispatch));
    pump();
}

void
TbScheduler::pump()
{
    if (pumping)
        return; // dispatch callbacks may re-enter via enqueue
    pumping = true;
    bool progress = true;
    while (progress && pool.freeCount() > 0) {
        progress = false;
        // First pass: honor each bucket's SM partition, so kernels
        // co-scheduled by asymmetric overlapping keep their reserved
        // SMs while both have work.
        for (auto &[key, bucket] : buckets) {
            while (!bucket.fifo.empty()) {
                int slot = pool.acquire(std::get<1>(key),
                                        std::get<2>(key));
                if (slot < 0)
                    break;
                auto dispatch = std::move(bucket.fifo.front());
                bucket.fifo.pop_front();
                dispatched.inc();
                progress = true;
                dispatch(slot);
            }
        }
        // Second pass: work-conserving spill — leftover ready TBs may
        // use any free slot instead of idling the partner partition.
        for (auto &[key, bucket] : buckets) {
            (void)key;
            while (!bucket.fifo.empty()) {
                int slot = pool.acquire(0.0, 1.0);
                if (slot < 0)
                    break;
                auto dispatch = std::move(bucket.fifo.front());
                bucket.fifo.pop_front();
                dispatched.inc();
                progress = true;
                dispatch(slot);
            }
        }
    }
    pumping = false;
}

std::size_t
TbScheduler::pendingCount() const
{
    std::size_t n = 0;
    for (const auto &[key, bucket] : buckets)
        n += bucket.fifo.size();
    return n;
}

} // namespace cais
