#include "gpu/hbm.hh"

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

HbmModel::HbmModel(EventQueue &eq_, double bytes_per_cycle, Cycle latency)
    : eq(eq_), bw(bytes_per_cycle), serDiv(bytes_per_cycle), lat(latency)
{
    if (bw <= 0)
        panic("HBM bandwidth must be positive");
}

void
HbmModel::access(std::uint64_t bytes_, EventQueue::Callback done)
{
    Cycle now = eq.now();
    Cycle start = std::max(now, busyUntil);
    Cycle ser = serDiv.cycles(bytes_);
    if (ser == 0)
        ser = 1;
    busyUntil = start + ser;
    busy += ser;
    bytes.inc(bytes_);
    accesses.inc();
    if (prof)
        // Queueing behind earlier accesses plus serialization plus
        // latency, caused by whatever scheduled this access (the
        // requesting packet's delivery, a hub job).
        prof->record(profNode_, WaitClass::hbm, now,
                     start + ser + lat, prof->causeNode(),
                     prof->causeTime());
    eq.schedule(start + ser + lat, std::move(done));
}

} // namespace cais
