/**
 * @file
 * Thread-block execution state machine.
 *
 * A TbRun models one resident CTA:
 *
 *   dispatch -> [pre-launch sync] -> {compute || [pre-access sync ->]
 *   pull ops} -> push ops injected -> retire
 *
 * Pull-mode communication overlaps compute inside the TB (the paper's
 * "TB-level local barrier" instead of a global one); push ops are
 * issued after compute and the CTA retires once they are on the wire.
 * Compute time receives a per-(GPU, TB) jitter multiplier modelling
 * the scheduling drift that staggers requests across GPUs.
 */

#ifndef CAIS_GPU_THREAD_BLOCK_HH
#define CAIS_GPU_THREAD_BLOCK_HH

#include <functional>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "gpu/hub.hh"
#include "gpu/kernel.hh"
#include "gpu/synchronizer.hh"

namespace cais
{

/** Shared per-GPU context handed to every TbRun. */
struct TbRunContext
{
    CAIS_OWNED_BY_DOMAIN(host);

    EventQueue *eq = nullptr;
    GpuHub *hub = nullptr;
    Synchronizer *sync = nullptr;
    Rng *rng = nullptr;
    double jitterSigma = 0.0;
    int numGpus = 0;

    /** Causal profiler (DESIGN.md §6g); null when not profiling. */
    CausalProfiler *prof = nullptr;
};

/** One in-flight thread block. */
class TbRun
{
  public:
    /**
     * @param on_produced fired when the TB's output tile becomes
     *        locally available (compute finished).
     * @param on_finished fired when the CTA retires (slot reusable);
     *        the callee may destroy this TbRun from inside.
     */
    TbRun(const TbRunContext &ctx, GpuId gpu, const KernelDesc &kernel,
          const TbDesc &tb, TbId index,
          std::function<void(TbRun &)> on_produced,
          std::function<void(TbRun &)> on_finished);

    /** Begin execution (the CTA already owns its slot). */
    void start();

    GpuId gpu() const { return gpuId; }
    TbId index() const { return idx; }

    /** Diagnostic state string for stall reports. */
    std::string stateStr() const;
    const TbDesc &desc() const { return tb; }
    const KernelDesc &kernelDesc() const { return kernel; }

  private:
    void afterLaunchSync();
    void issueLoads();
    void onComputeDone();
    void onLoadsDone();
    void maybeAdvance();
    void issuePushes();
    void finish();

    /** This TB's profile-graph node. */
    std::uint64_t profNode() const;

    CAIS_OWNED_BY_DOMAIN(host);

    TbRunContext ctx;
    GpuId gpuId;
    const KernelDesc &kernel;
    const TbDesc &tb;
    TbId idx;

    std::function<void(TbRun &)> onProduced;
    std::function<void(TbRun &)> onFinished;

    bool computeDone = false;
    bool loadsDone = false;
    bool advanced = false;
    bool pushSynced = false;

    Cycle startAt = 0;      ///< profiler: compute-edge origin
    Cycle loadsIssueAt = 0; ///< profiler: load-wait origin
};

} // namespace cais

#endif // CAIS_GPU_THREAD_BLOCK_HH
