/**
 * @file
 * GPU hub: the NVLink endpoint of one GPU.
 *
 * Responsibilities (mirroring the Accel-Sim "Hub" the paper extends):
 *  - translate thread-block remote ops into fabric packets at chunk
 *    granularity, with an injection window for backpressure;
 *  - correlate responses/acks back to the issuing jobs;
 *  - serve remote reads from local HBM (switch fetches, P2P reads);
 *  - land remote writes into HBM and notify tile tracking;
 *  - transport TB-group sync packets and apply throttle hints
 *    (TB-aware request throttling, Sec. III-B.2).
 */

#ifndef CAIS_GPU_HUB_HH
#define CAIS_GPU_HUB_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "gpu/gpu_config.hh"
#include "gpu/hbm.hh"
#include "gpu/kernel.hh"
#include "noc/network.hh"
#include "switchcompute/group_sync_table.hh" // SyncPhase

namespace cais
{

class CausalProfiler;
class Synchronizer;

/** Sink for remote data landing in this GPU's memory. */
class DataArrivalHandler
{
  public:
    virtual ~DataArrivalHandler() = default;

    /**
     * @param gpu receiving GPU.
     * @param addr landing address.
     * @param bytes payload size.
     * @param contribs reduction contributions represented (0 for
     *        plain data writes/multicasts).
     */
    virtual void onDataArrival(GpuId gpu, Addr addr,
                               std::uint32_t bytes, int contribs) = 0;
};

/** One chunked communication request stream from a thread block. */
struct HubJob
{
    CAIS_OWNED_BY_DOMAIN(host);

    KernelId kernel = invalidId;
    TbId tb = invalidId;
    GroupId group = invalidId;

    struct Chunk
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        RemoteOpKind kind;
        Addr addr;
        std::uint32_t bytes;
        int expected;
        bool protocolPad;
    };
    std::vector<Chunk> chunks;

    /** All chunks handed to the fabric (wire-injection order). */
    std::function<void()> onInjected;

    /** All responses/acks received (pull kinds and nvlsSt). */
    std::function<void()> onComplete;
};

/** The per-GPU fabric endpoint. */
class GpuHub : public PacketSink, public Probe
{
  public:
    GpuHub(EventQueue &eq, Fabric &fabric, GpuId gpu,
           const GpuParams &params);

    void setArrivalHandler(DataArrivalHandler *h) { arrivals = h; }
    void setSynchronizer(Synchronizer *s) { synchronizer = s; }

    /** Attach the causal profiler (DESIGN.md §6g): records injection
     *  backpressure edges and wires the HBM channel's node. */
    void setProfiler(CausalProfiler *pr);

    /** Split @p op into chunks (helper for job construction). */
    std::vector<HubJob::Chunk> chunkify(const RemoteOp &op) const;

    /** Submit a job; ownership transfers to the hub. */
    void submit(std::unique_ptr<HubJob> job);

    /** Send a TB-group sync registration (bypasses the window). */
    void sendSyncReq(GroupId group, SyncPhase phase, int expected);

    // PacketSink
    void acceptPacket(Packet &&pkt, CreditLink *from, int vc) override;

    GpuId gpuId() const { return gpu; }
    HbmModel &hbm() { return mem; }
    const HbmModel &hbm() const { return mem; }

    int inflight() const { return inflightChunks; }
    std::size_t queuedJobs() const { return issueQueue.size(); }
    std::uint64_t chunksInjected() const { return injected.value(); }
    std::uint64_t responsesReceived() const { return responses.value(); }
    std::uint64_t throttlePauses() const { return pauses.value(); }
    std::uint64_t bytesServed() const { return served.value(); }

    /** True when no job, chunk, or response is pending. */
    bool idle() const;

    void
    registerMetrics(MetricRegistry &reg,
                    const std::string &prefix) const override
    {
        reg.addCounter(prefix + ".chunksInjected", &injected);
        reg.addCounter(prefix + ".responses", &responses);
        reg.addCounter(prefix + ".throttlePauses", &pauses);
        reg.addCounter(prefix + ".bytesServed", &served);
    }

  private:
    CAIS_OWNED_BY_DOMAIN(host);

    struct JobState
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        std::unique_ptr<HubJob> job;
        std::size_t nextChunk = 0;
        int awaitingInject = 0;  ///< chunks not yet on the wire
        int awaitingReply = 0;   ///< responses/acks outstanding
        bool injectedAll = false;
        Cycle submitAt = 0;      ///< profiler: injection-wait origin
    };

    void pump();
    void checkInjectDone(std::uint64_t job_id);
    void injectChunk(std::uint64_t job_id, JobState &js,
                     const HubJob::Chunk &c);
    void onWireInjected();
    void finishInject(JobState &js);
    void maybeFinish(std::uint64_t job_id);

    void serveRead(Packet &&pkt);
    void landWrite(Packet &&pkt);

    /** Build a packet from this GPU with a fresh simulation-wide id
     *  (the owning Fabric's allocator). */
    Packet newPacket(PacketType t, int dst);

    EventQueue &eq;
    Fabric &fabric;
    GpuId gpu;
    std::uint32_t chunkBytes;
    int maxInflight;
    int maxCaisLoads;
    HbmModel mem;

    DataArrivalHandler *arrivals = nullptr;
    Synchronizer *synchronizer = nullptr;
    CausalProfiler *prof = nullptr;

    std::unordered_map<std::uint64_t, JobState> jobs;
    std::uint64_t nextJobId = 1;
    std::deque<std::uint64_t> issueQueue; ///< jobs with chunks to send

    /** cookie -> owning job. */
    std::unordered_map<std::uint64_t, std::uint64_t> cookieToJob;
    std::uint64_t nextCookie = 1;

    /** Group pause deadlines from throttle hints. */
    std::unordered_map<GroupId, Cycle> pausedGroups;

    /** Jobs whose chunks interleave round-robin at the queue head. */
    static constexpr std::size_t issueWindow = 8;

    int inflightChunks = 0; ///< sent to fabric, not yet serialized
    int caisLoadsOutstanding = 0; ///< ld.cais awaiting response
    bool pumpScheduled = false;
    bool pumping = false;

    /**
     * Send-order queue matching uplink dequeue events back to jobs
     * (0 = non-job traffic). Dequeues across the parallel uplinks are
     * matched FIFO, a close approximation of wire order.
     */
    std::deque<std::uint64_t> wireOrder;

    Counter injected;
    Counter responses;
    Counter pauses;
    Counter served;
};

} // namespace cais

#endif // CAIS_GPU_HUB_HH
