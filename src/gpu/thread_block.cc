#include "gpu/thread_block.hh"

#include <algorithm>

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

TbRun::TbRun(const TbRunContext &ctx_, GpuId gpu, const KernelDesc &k,
             const TbDesc &tb_, TbId index,
             std::function<void(TbRun &)> on_produced,
             std::function<void(TbRun &)> on_finished)
    : ctx(ctx_), gpuId(gpu), kernel(k), tb(tb_), idx(index),
      onProduced(std::move(on_produced)),
      onFinished(std::move(on_finished))
{
    if (!ctx.eq || !ctx.hub || !ctx.rng)
        panic("TbRun: incomplete context");
}

void
TbRun::start()
{
    // Pre-launch synchronization happens before the CTA is dispatched
    // (System::enqueueTb); at this point the slot is owned.
    afterLaunchSync();
}

std::uint64_t
TbRun::profNode() const
{
    return profnode::tb(kernel.id, gpuId, idx);
}

void
TbRun::afterLaunchSync()
{
    startAt = ctx.eq->now();
    // Compute and pull-mode communication run concurrently inside the
    // TB (double-buffered tiles); the TB advances when both are done.
    double mult = 1.0;
    if (ctx.jitterSigma > 0.0)
        mult = std::clamp(ctx.rng->normal(1.0, ctx.jitterSigma),
                          0.5, 1.8);
    if (tb.computeCycles > 0) {
        // cais-lint: allow(D12) -- the jitter multiplier is real-valued by design; one seeded truncation per TB, bounded by the 0.5 clamp
        Cycle dur = static_cast<Cycle>(
            static_cast<double>(tb.computeCycles) * mult);
        if (dur == 0)
            dur = 1;
        ctx.eq->scheduleAfter(dur, [this] { onComputeDone(); });
    } else {
        computeDone = true;
    }

    bool has_cais_pull = false;
    for (const auto &op : tb.pullOps)
        if (isCaisKind(op.kind))
            has_cais_pull = true;

    if (tb.pullOps.empty()) {
        loadsDone = true;
        maybeAdvance();
        return;
    }

    if (kernel.preAccessSync && has_cais_pull &&
        tb.group != invalidId) {
        // The warp stalls at its first *.cais access until all peer
        // TBs reach the same point; independent instructions (the
        // compute event above) keep issuing meanwhile. Participants
        // are the G-1 requesters (the home GPU reads locally).
        Cycle req_at = ctx.eq->now();
        ctx.sync->requestSync(tb.group, SyncPhase::preAccess,
                              ctx.numGpus - 1, [this, req_at] {
            // Barrier-wait edge; the release delivery (the active
            // cause) hops the walk into the switch sync table.
            if (ctx.prof)
                ctx.prof->record(profNode(), WaitClass::syncBarrier,
                                 req_at, ctx.eq->now());
            issueLoads();
        });
    } else {
        issueLoads();
    }

    if (computeDone)
        maybeAdvance();
}

void
TbRun::issueLoads()
{
    loadsIssueAt = ctx.eq->now();
    auto job = std::make_unique<HubJob>();
    job->kernel = kernel.id;
    job->tb = idx;
    job->group = tb.group;
    for (const auto &op : tb.pullOps) {
        auto chunks = ctx.hub->chunkify(op);
        job->chunks.insert(job->chunks.end(), chunks.begin(),
                           chunks.end());
    }
    job->onComplete = [this] { onLoadsDone(); };
    ctx.hub->submit(std::move(job));
}

void
TbRun::onComputeDone()
{
    computeDone = true;
    // SM-occupancy edge: the TB computed from dispatch to now; the
    // self-provenance continues the walk at dispatch time, where the
    // scheduler's edge takes over.
    if (ctx.prof)
        ctx.prof->record(profNode(), WaitClass::smCompute, startAt,
                         ctx.eq->now(), profNode(), startAt);
    maybeAdvance();
}

void
TbRun::onLoadsDone()
{
    loadsDone = true;
    // Load-wait edge: zero-length at the completing delivery (the
    // active cause), hopping the walk into the fabric.
    if (ctx.prof)
        ctx.prof->record(profNode(), WaitClass::depWait, loadsIssueAt,
                         ctx.eq->now());
    maybeAdvance();
}

void
TbRun::maybeAdvance()
{
    if (!computeDone || !loadsDone || advanced)
        return;
    advanced = true;

    // Everything the advance triggers — tile readiness, push jobs,
    // retirement — is caused by this TB reaching its advance point.
    CausalProfiler::ScopedCause sc(ctx.prof, profNode(),
                                   ctx.eq->now());

    // The output tile is now locally available.
    if (onProduced)
        onProduced(*this);

    issuePushes();
}

void
TbRun::issuePushes()
{
    if (tb.pushOps.empty()) {
        finish();
        return;
    }

    bool has_cais_push = false;
    for (const auto &op : tb.pushOps)
        if (isCaisKind(op.kind))
            has_cais_push = true;

    if (kernel.preAccessSync && has_cais_push &&
        tb.group != invalidId && !pushSynced) {
        // Align the first red.cais across the G-1 contributing GPUs
        // (the home GPU reduces its partial locally).
        pushSynced = true;
        Cycle req_at = ctx.eq->now();
        ctx.sync->requestSync(tb.group, SyncPhase::preAccess,
                              ctx.numGpus - 1, [this, req_at] {
            if (ctx.prof)
                ctx.prof->record(profNode(), WaitClass::syncBarrier,
                                 req_at, ctx.eq->now());
            // The release resumes this TB: it owns what follows
            // (push jobs, retirement).
            CausalProfiler::ScopedCause sc(ctx.prof, profNode(),
                                           ctx.eq->now());
            issuePushes();
        });
        return;
    }

    auto job = std::make_unique<HubJob>();
    job->kernel = kernel.id;
    job->tb = idx;
    job->group = tb.group;
    for (const auto &op : tb.pushOps) {
        auto chunks = ctx.hub->chunkify(op);
        job->chunks.insert(job->chunks.end(), chunks.begin(),
                           chunks.end());
    }
    // Pushes are posted writes: the CTA retires once they are handed
    // to the memory system (the hub paces actual injection); delivery
    // is tracked by the destination-side tile trackers.
    ctx.hub->submit(std::move(job));
    finish();
}

std::string
TbRun::stateStr() const
{
    return strfmt("compute=%d loads=%d advanced=%d pushSynced=%d "
                  "pulls=%zu pushes=%zu group=%d",
                  computeDone ? 1 : 0, loadsDone ? 1 : 0,
                  advanced ? 1 : 0, pushSynced ? 1 : 0,
                  tb.pullOps.size(), tb.pushOps.size(), tb.group);
}

void
TbRun::finish()
{
    // May destroy *this; must be the last action.
    onFinished(*this);
}

} // namespace cais
