/**
 * @file
 * Kernel and thread-block descriptors.
 *
 * A KernelDesc is the unit the execution strategies schedule: one
 * logical operator kernel with a per-GPU grid of thread blocks. Each
 * TbDesc carries a compute cost, remote communication ops (pull side
 * issued with compute, push side issued after), CAIS TB-group
 * membership, fine-grained tile dependencies, and the tile it
 * produces. These are *descriptors*: the runtime engine interprets
 * them against the GPU and fabric models.
 */

#ifndef CAIS_GPU_KERNEL_HH
#define CAIS_GPU_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cais
{

/** Kinds of remote operations a TB can issue. */
enum class RemoteOpKind : std::uint8_t
{
    plainLoad,    ///< ld.global to a peer GPU (P2P read)
    plainWrite,   ///< st.global to a peer GPU (P2P write)
    nvlsLdReduce, ///< multimem.ld_reduce (pull, in-switch reduce)
    nvlsSt,       ///< multimem.st (push, in-switch multicast)
    nvlsRed,      ///< multimem.red (push, in-switch reduce-to-all)
    caisLoad,     ///< ld.cais (pull, mergeable)
    caisRed,      ///< red.cais (push, mergeable)
};

/** True for pull-mode kinds (issued alongside compute). */
bool isPullKind(RemoteOpKind k);

/** True for kinds the compiler may lower to CAIS variants. */
bool isCaisKind(RemoteOpKind k);

/** One contiguous remote access stream of a thread block. */
struct RemoteOp
{
    CAIS_OWNED_BY_DOMAIN(config);

    RemoteOpKind kind = RemoteOpKind::plainLoad;
    Addr base = 0;
    std::uint64_t bytes = 0;

    /** Expected participants for merge/reduction sessions. */
    int expected = 0;

    /** Data moves under a software collective protocol (in-band
     *  flags/padding): the wire carries ~1/3 extra bytes. */
    bool protocolPad = false;
};

/** Reference to a tile of a tracked tensor, at a specific GPU. */
struct TileRef
{
    CAIS_OWNED_BY_DOMAIN(config);

    int tracker = invalidId; ///< index into the system's trackers
    int tile = 0;
    GpuId atGpu = invalidId;
};

/** One thread block of a kernel. */
struct TbDesc
{
    CAIS_OWNED_BY_DOMAIN(config);

    /** Compute cost in cycles (before jitter). */
    Cycle computeCycles = 0;

    /** Remote reads issued with compute (overlappable). */
    std::vector<RemoteOp> pullOps;

    /** Remote writes/reductions issued after compute. */
    std::vector<RemoteOp> pushOps;

    /** CAIS TB group (same blockIdx across GPUs); invalidId if none. */
    GroupId group = invalidId;

    /** Tile contributed to the kernel's tracker on completion at the
     *  executing GPU; -1 when the kernel output is pushed remotely. */
    int producesTile = -1;

    /** Bytes credited to producesTile when this TB completes. */
    std::uint64_t produceBytes = 0;

    /** Tiles that must be ready before this TB may launch. */
    std::vector<TileRef> deps;
};

/** One logical operator kernel across all GPUs. */
struct KernelDesc
{
    CAIS_OWNED_BY_DOMAIN(config);

    KernelId id = invalidId;
    std::string name;

    /** Per-GPU grids, indexed by GPU id. */
    std::vector<std::vector<TbDesc>> grids;

    /** Tracker index fed by this kernel's output; invalidId if none. */
    int producesTracker = invalidId;

    /** Merging-aware TB coordination flags (Sec. III-B). */
    bool preLaunchSync = false;
    bool preAccessSync = false;

    /** SM partition [smFrom, smTo) as a fraction of the SM array,
     *  used by asymmetric kernel overlapping (Sec. III-C.2). */
    double smFrom = 0.0;
    double smTo = 1.0;

    /** Kernels that must fully complete before this one launches
     *  (the coarse global barrier of communication-centric designs). */
    std::vector<KernelId> kernelDeps;

    /** Launch overhead charged once per GPU at kernel start. */
    Cycle launchOverhead = 0;

    /** Communication kernel (collective), for comm/compute-time
     *  accounting (Fig. 2). */
    bool commKernel = false;

    /** Dispatch priority (lower first); comm/staging TBs use 0 so
     *  queued compute waves cannot starve the data pipeline. */
    int schedPriority = 1;

    /** Total thread blocks across GPUs. */
    std::size_t totalTbs() const;

    /** Sum of compute cycles over all TBs on @p gpu. */
    Cycle computeWork(GpuId gpu) const;

    void validate(int num_gpus) const;
};

} // namespace cais

#endif // CAIS_GPU_KERNEL_HH
