/**
 * @file
 * SM occupancy model: a pool of CTA slots (numSms x ctasPerSm) with
 * SM-range partitioning, used by the asymmetric kernel overlapping
 * optimizer to co-schedule kernels on disjoint SM sets.
 */

#ifndef CAIS_GPU_SM_HH
#define CAIS_GPU_SM_HH

#include <cstdint>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"

namespace cais
{

/** CTA slot pool of one GPU. */
class SmPool
{
  public:
    SmPool(EventQueue &eq, int num_sms, int ctas_per_sm);

    int numSms() const { return sms; }
    int numSlots() const { return static_cast<int>(busyAt.size()); }

    /**
     * Claim a free slot whose SM lies in [from, to) (fractions of the
     * SM array). @return the slot id, or -1 when none is free.
     */
    int acquire(double from, double to);

    /** True if acquire(from, to) would succeed. */
    bool hasFree(double from, double to) const;

    void release(int slot);

    int freeCount() const { return freeSlots; }

    /** Busy slot-cycles accumulated so far (utilization numerator). */
    Cycle busySlotCycles() const;

    /**
     * Mean fraction of occupied slots over [0, t] — the GPU
     * "SM utilization" figure quoted in the paper (Sec. II-C).
     */
    double utilization(Cycle t) const;

  private:
    CAIS_OWNED_BY_DOMAIN(host);

    int smOfSlot(int slot) const { return slot % sms; }

    EventQueue &eq;
    int sms;
    std::vector<Cycle> busyAt; ///< acquire time, or ~0ull when free
    int freeSlots;
    Cycle accumulated = 0;     ///< finished occupancy
};

} // namespace cais

#endif // CAIS_GPU_SM_HH
