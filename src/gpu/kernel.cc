#include "gpu/kernel.hh"

#include "common/log.hh"

namespace cais
{

bool
isPullKind(RemoteOpKind k)
{
    return k == RemoteOpKind::plainLoad ||
           k == RemoteOpKind::nvlsLdReduce ||
           k == RemoteOpKind::caisLoad;
}

bool
isCaisKind(RemoteOpKind k)
{
    return k == RemoteOpKind::caisLoad || k == RemoteOpKind::caisRed;
}

std::size_t
KernelDesc::totalTbs() const
{
    std::size_t n = 0;
    for (const auto &g : grids)
        n += g.size();
    return n;
}

Cycle
KernelDesc::computeWork(GpuId gpu) const
{
    Cycle c = 0;
    for (const auto &tb : grids[static_cast<std::size_t>(gpu)])
        c += tb.computeCycles;
    return c;
}

void
KernelDesc::validate(int num_gpus) const
{
    if (grids.size() != static_cast<std::size_t>(num_gpus))
        panic("kernel %s: grid count %zu != GPU count %d", name.c_str(),
              grids.size(), num_gpus);
    if (smFrom < 0.0 || smTo > 1.0 || smFrom >= smTo)
        panic("kernel %s: bad SM partition [%f, %f)", name.c_str(),
              smFrom, smTo);
    for (const auto &grid : grids) {
        for (const auto &tb : grid) {
            for (const auto &op : tb.pullOps)
                if (!isPullKind(op.kind))
                    panic("kernel %s: push op in pull list",
                          name.c_str());
            for (const auto &op : tb.pushOps)
                if (isPullKind(op.kind))
                    panic("kernel %s: pull op in push list",
                          name.c_str());
        }
    }
}

} // namespace cais
