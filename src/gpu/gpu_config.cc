#include "gpu/gpu_config.hh"

#include <sstream>

#include "common/log.hh"

namespace cais
{

void
GpuParams::validate() const
{
    if (numSms < 1)
        fatal("GPU needs at least one SM");
    if (ctasPerSm < 1)
        fatal("need at least one CTA slot per SM");
    if (flopsPerCyclePerSm <= 0 || gemmEfficiency <= 0 ||
        gemmEfficiency > 1.0)
        fatal("bad GPU throughput parameters");
    if (hbmBytesPerCycle <= 0)
        fatal("bad HBM bandwidth");
    if (chunkBytes < 128)
        fatal("chunk granularity below one coalesced packet (128 B)");
    if (maxInflightChunks < 1)
        fatal("injection window must be at least one chunk");
    if (jitterSigma < 0 || jitterSigma > 0.5)
        fatal("jitter sigma out of range [0, 0.5]");
}

std::string
GpuParams::str() const
{
    std::ostringstream os;
    os << numSms << " SMs x " << ctasPerSm << " CTAs, "
       << effectiveFlopsPerCyclePerSm() << " eff FLOP/cyc/SM, HBM "
       << hbmBytesPerCycle << " B/cyc, chunk " << chunkBytes << " B";
    return os.str();
}

GpuParams
fullScaleH100()
{
    GpuParams p;
    p.numSms = 132;
    return p;
}

GpuParams
halfScaleH100()
{
    GpuParams p;
    p.numSms = 66;
    return p;
}

} // namespace cais
