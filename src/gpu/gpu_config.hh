/**
 * @file
 * GPU model parameters, calibrated to NVIDIA H100 specifications and
 * the paper's scaled-down evaluation setup (Sec. IV-B: matrix
 * dimensions and SM count halved relative to the full part).
 */

#ifndef CAIS_GPU_GPU_CONFIG_HH
#define CAIS_GPU_GPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace cais
{

/** Per-GPU model parameters. */
struct GpuParams
{
    CAIS_OWNED_BY_DOMAIN(config);

    /** Streaming multiprocessors (66 = half-scale H100, per paper). */
    int numSms = 66;

    /** Concurrent thread blocks resident per SM. */
    int ctasPerSm = 2;

    /**
     * Dense fp16 FLOPs per cycle per SM at peak. An H100 sustains
     * ~989 TFLOP/s over 132 SMs at ~1 GHz -> ~7500 FLOP/cycle/SM.
     */
    double flopsPerCyclePerSm = 7500.0;

    /** Fraction of peak a tuned CUTLASS GEMM sustains. */
    double gemmEfficiency = 0.65;

    /** HBM3 bandwidth in bytes per cycle (3350 GB/s on H100). */
    double hbmBytesPerCycle = 3350.0;

    /** HBM access latency in cycles. */
    Cycle hbmLatency = 300;

    /** Remote-request granularity (coalesced burst per packet). */
    std::uint32_t chunkBytes = 4096;

    /** Injection window: chunks sent to the fabric but not yet on
     *  the wire; provides backpressure into the SMs. */
    int maxInflightChunks = 512;

    /**
     * Outstanding ld.cais chunks awaiting their response, per GPU —
     * the "request throttling mechanism [that] limits the number of
     * outstanding remote requests per GPU" (Sec. V-C.2). Bounds the
     * switch merging-table working set.
     */
    int maxCaisLoadOutstanding = 256;

    /**
     * Std-dev of the per-TB execution-time multiplier, modelling the
     * scheduling/DRAM jitter that causes cross-GPU drift [18].
     */
    double jitterSigma = 0.08;

    /**
     * Uncoordinated kernel-start skew across GPUs, modelling
     * prior-kernel tail imbalance and cluster interference [18];
     * together with per-TB jitter it produces the ~35 us request
     * stagger the paper measures without coordination. Pre-launch
     * synchronization realigns TBs regardless of this skew.
     */
    Cycle maxStartSkew = 10 * cyclesPerUs;

    /** Kernel launch overhead charged once per kernel per GPU. */
    Cycle kernelLaunchOverhead = 2 * cyclesPerUs;

    /** Base RNG seed; each GPU derives seed + gpuId. */
    std::uint64_t seed = 1;

    /** Effective GEMM throughput per SM in FLOP/cycle. */
    double effectiveFlopsPerCyclePerSm() const
    {
        return flopsPerCyclePerSm * gemmEfficiency;
    }

    void validate() const;
    std::string str() const;
};

/** Full-scale H100 configuration (Table II "Full" row). */
GpuParams fullScaleH100();

/** Half-scale configuration used throughout the evaluation. */
GpuParams halfScaleH100();

} // namespace cais

#endif // CAIS_GPU_GPU_CONFIG_HH
