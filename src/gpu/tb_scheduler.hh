/**
 * @file
 * Per-GPU thread-block dispatcher: ready TBs (dependencies satisfied,
 * kernel launched) queue per SM-partition bucket and dispatch in FIFO
 * order as CTA slots free up — the independent per-GPU scheduling
 * whose cross-GPU drift CAIS's coordination mechanism tames.
 */

#ifndef CAIS_GPU_TB_SCHEDULER_HH
#define CAIS_GPU_TB_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "gpu/sm.hh"

namespace cais
{

/** FIFO thread-block dispatcher over an SmPool. */
class TbScheduler : public Probe
{
  public:
    explicit TbScheduler(SmPool &pool);

    /**
     * Queue a dispatchable TB restricted to SMs in [from, to);
     * @p dispatch receives the acquired slot id. Lower @p priority
     * dispatches first (communication/staging TBs preempt queued
     * compute waves so the pipeline stays fed).
     */
    void enqueue(double from, double to, int priority,
                 std::function<void(int slot)> dispatch);

    /** Try to dispatch queued TBs into free slots. */
    void pump();

    std::size_t pendingCount() const;
    std::uint64_t dispatchedCount() const { return dispatched.value(); }

    void
    registerMetrics(MetricRegistry &reg,
                    const std::string &prefix) const override
    {
        reg.addCounter(prefix + ".dispatched", &dispatched);
    }

  private:
    CAIS_OWNED_BY_DOMAIN(host);

    struct Bucket
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        std::deque<std::function<void(int)>> fifo;
    };

    SmPool &pool;
    std::map<std::tuple<int, double, double>, Bucket> buckets;
    Counter dispatched;
    bool pumping = false;
};

} // namespace cais

#endif // CAIS_GPU_TB_SCHEDULER_HH
