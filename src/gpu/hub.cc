#include "gpu/hub.hh"

#include <algorithm>

#include "analysis/causal_profile.hh"
#include "common/log.hh"
#include "gpu/synchronizer.hh"

namespace cais
{

GpuHub::GpuHub(EventQueue &eq_, Fabric &fabric_, GpuId gpu_,
               const GpuParams &params)
    : eq(eq_), fabric(fabric_), gpu(gpu_),
      chunkBytes(params.chunkBytes),
      maxInflight(params.maxInflightChunks),
      maxCaisLoads(params.maxCaisLoadOutstanding),
      mem(eq_, params.hbmBytesPerCycle, params.hbmLatency)
{
    // Watch our uplinks so the injection window tracks actual wire
    // occupancy (each dequeue = one of our packets started the wire).
    for (int i = 0; i < fabric.uplinksPerGpu(); ++i) {
        fabric.uplink(gpu, i).setDequeueCallback(
            [this](int) { onWireInjected(); });
    }
}

void
GpuHub::setProfiler(CausalProfiler *pr)
{
    prof = pr;
    mem.setProfiler(pr, profnode::hbm(gpu));
}

std::vector<HubJob::Chunk>
GpuHub::chunkify(const RemoteOp &op) const
{
    std::vector<HubJob::Chunk> out;
    std::uint64_t off = 0;
    while (off < op.bytes) {
        std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunkBytes, op.bytes - off));
        out.push_back(HubJob::Chunk{op.kind, op.base + off, n,
                                    op.expected, op.protocolPad});
        off += n;
    }
    return out;
}

void
GpuHub::submit(std::unique_ptr<HubJob> job)
{
    std::uint64_t id = nextJobId++;
    JobState &js = jobs[id];
    js.job = std::move(job);
    js.submitAt = eq.now();
    js.awaitingInject = static_cast<int>(js.job->chunks.size());

    for (const auto &c : js.job->chunks) {
        if (isPullKind(c.kind) || c.kind == RemoteOpKind::nvlsSt)
            ++js.awaitingReply;
    }

    if (js.job->chunks.empty()) {
        finishInject(js);
        maybeFinish(id);
        return;
    }

    issueQueue.push_back(id);
    pump();
}

Packet
GpuHub::newPacket(PacketType t, int dst)
{
    return makePacket(fabric.packetIds(), t, gpu, dst);
}

void
GpuHub::sendSyncReq(GroupId group, SyncPhase phase, int expected)
{
    Packet pkt = newPacket(PacketType::groupSyncReq, invalidId);
    pkt.group = group;
    pkt.cookie = static_cast<std::uint64_t>(phase);
    pkt.expected = expected;
    pkt.issuerGpu = gpu;
    pkt.dst = fabric.syncNode(gpu, group);
    wireOrder.push_back(0); // non-job traffic
    fabric.sendFromGpu(gpu, std::move(pkt));
}

void
GpuHub::pump()
{
    // Injection may complete synchronously (the link's dequeue
    // callback fires inside send()), which re-invokes pump(); the
    // guard keeps a single loop in control of the job cursors.
    if (pumping)
        return;
    pumping = true;
    pumpScheduled = false;

    Cycle now = eq.now();
    std::size_t rotations = issueQueue.size();
    Cycle earliest_resume = 0;

    while (inflightChunks < maxInflight && !issueQueue.empty()) {
        std::uint64_t id = issueQueue.front();
        JobState &js = jobs.at(id);

        RemoteOpKind next_kind = js.job->chunks[js.nextChunk].kind;

        // Outstanding-request throttling (Sec. V-C.2): mergeable
        // loads are capped so the switch merging tables track one
        // GPU's bounded working set.
        if (next_kind == RemoteOpKind::caisLoad &&
            caisLoadsOutstanding >= maxCaisLoads) {
            issueQueue.pop_front();
            issueQueue.push_back(id);
            if (rotations == 0 || --rotations == 0)
                break; // resumes when a response arrives
            continue;
        }

        // TB-aware request throttling: pause mergeable traffic of a
        // hinted group until the deadline.
        auto pit = pausedGroups.find(js.job->group);
        if (pit != pausedGroups.end()) {
            if (now >= pit->second) {
                pausedGroups.erase(pit);
            } else if (isCaisKind(next_kind)) {
                issueQueue.pop_front();
                issueQueue.push_back(id);
                if (earliest_resume == 0 ||
                    pit->second < earliest_resume)
                    earliest_resume = pit->second;
                if (rotations == 0 || --rotations == 0)
                    break; // every queued job is paused
                continue;
            }
        }

        // Advance the cursor before injecting: injectChunk can
        // trigger nested wire events that must observe a consistent
        // cursor. Chunks round-robin across a small window of jobs
        // (concurrent warps interleave their streams), which spreads
        // switch ports while tiles still complete progressively.
        HubJob::Chunk chunk = js.job->chunks[js.nextChunk];
        ++js.nextChunk;
        issueQueue.pop_front();
        if (js.nextChunk < js.job->chunks.size()) {
            std::size_t pos = std::min<std::size_t>(
                issueWindow - 1, issueQueue.size());
            issueQueue.insert(issueQueue.begin() +
                                  static_cast<std::ptrdiff_t>(pos),
                              id);
        }
        injectChunk(id, js, chunk);
        checkInjectDone(id);
    }

    if (earliest_resume > now && !pumpScheduled) {
        pumpScheduled = true;
        eq.schedule(earliest_resume, [this] { pump(); });
    }
    pumping = false;
}

void
GpuHub::checkInjectDone(std::uint64_t job_id)
{
    auto it = jobs.find(job_id);
    if (it == jobs.end())
        return;
    JobState &js = it->second;
    if (!js.injectedAll && js.awaitingInject <= 0 &&
        js.nextChunk == js.job->chunks.size()) {
        finishInject(js);
        maybeFinish(job_id);
    }
}

void
GpuHub::injectChunk(std::uint64_t job_id, JobState &js,
                    const HubJob::Chunk &c)
{
    std::uint64_t cookie = nextCookie++;

    Packet pkt;
    switch (c.kind) {
      case RemoteOpKind::caisLoad:
        pkt = newPacket(PacketType::caisLoadReq, invalidId);
        pkt.reqBytes = c.bytes;
        pkt.dst = fabric.mergeNode(gpu, c.addr);
        break;
      case RemoteOpKind::plainLoad:
        pkt = newPacket(PacketType::readReq, addrHomeGpu(c.addr));
        pkt.reqBytes = c.bytes;
        break;
      case RemoteOpKind::nvlsLdReduce:
        pkt = newPacket(PacketType::multimemLdReduceReq, invalidId);
        pkt.reqBytes = c.bytes;
        pkt.dst = fabric.mergeNode(gpu, c.addr);
        break;
      case RemoteOpKind::nvlsSt:
        pkt = newPacket(PacketType::multimemSt, invalidId);
        pkt.payloadBytes = c.bytes;
        pkt.dst = fabric.mergeNode(gpu, c.addr);
        break;
      case RemoteOpKind::nvlsRed:
        pkt = newPacket(PacketType::multimemRed, invalidId);
        pkt.payloadBytes = c.bytes;
        pkt.dst = fabric.mergeNode(gpu, c.addr);
        break;
      case RemoteOpKind::caisRed:
        pkt = newPacket(PacketType::caisRedReq, invalidId);
        pkt.payloadBytes = c.bytes;
        pkt.dst = fabric.mergeNode(gpu, c.addr);
        break;
      case RemoteOpKind::plainWrite:
        pkt = newPacket(PacketType::writeReq, addrHomeGpu(c.addr));
        pkt.payloadBytes = c.bytes;
        break;
      default:
        panic("bad remote op kind");
    }

    pkt.addr = c.addr;
    pkt.expected = c.expected;
    if (c.protocolPad) {
        if (pkt.payloadBytes > 0)
            pkt.padBytes = c.bytes / protocolPadDivisor;
        else
            pkt.padResponse = true; // pad rides on the data response
    }
    pkt.issuerGpu = gpu;
    pkt.kernel = js.job->kernel;
    pkt.tb = js.job->tb;
    pkt.group = js.job->group;
    pkt.cookie = cookie;

    cookieToJob[cookie] = job_id;

    if (c.kind == RemoteOpKind::caisLoad)
        ++caisLoadsOutstanding;
    ++inflightChunks;
    injected.inc();
    wireOrder.push_back(job_id);
    if (prof) {
        // Injection-backpressure edge: the chunk sat behind the hub's
        // in-flight window since job submission; provenance points at
        // the submitting TB so the walk telescopes into compute.
        prof->record(profnode::hubQueue(gpu),
                     WaitClass::hubInjection, js.submitAt, eq.now(),
                     profnode::tb(js.job->kernel, gpu, js.job->tb),
                     js.submitAt);
        CausalProfiler::ScopedCause sc(
            prof, profnode::hubQueue(gpu), eq.now());
        fabric.sendFromGpu(gpu, std::move(pkt));
        return;
    }
    fabric.sendFromGpu(gpu, std::move(pkt));
}

void
GpuHub::onWireInjected()
{
    if (wireOrder.empty())
        panic("hub %d: wire event with empty order queue", gpu);
    std::uint64_t job_id = wireOrder.front();
    wireOrder.pop_front();
    if (job_id == 0)
        return; // sync or service traffic: not window-tracked

    --inflightChunks;
    auto it = jobs.find(job_id);
    if (it != jobs.end()) {
        --it->second.awaitingInject;
        checkInjectDone(job_id);
    }
    pump();
}

void
GpuHub::finishInject(JobState &js)
{
    js.injectedAll = true;
    if (js.job->onInjected)
        js.job->onInjected();
}

void
GpuHub::maybeFinish(std::uint64_t job_id)
{
    auto it = jobs.find(job_id);
    if (it == jobs.end())
        return;
    JobState &js = it->second;
    if (!js.injectedAll || js.awaitingReply > 0)
        return;
    if (js.job->onComplete)
        js.job->onComplete();
    jobs.erase(it);
}

void
GpuHub::serveRead(Packet &&pkt)
{
    served.inc(pkt.reqBytes);
    int reply_to = pkt.src;
    Packet resp = newPacket(PacketType::readResp, reply_to);
    resp.addr = pkt.addr;
    resp.payloadBytes = pkt.reqBytes;
    if (pkt.padResponse)
        resp.padBytes = pkt.reqBytes / protocolPadDivisor;
    resp.cookie = pkt.cookie;
    resp.kernel = pkt.kernel;
    resp.issuerGpu = pkt.issuerGpu;

    mem.access(pkt.reqBytes, [this, r = std::move(resp)]() mutable {
        // The HBM read enables the response send.
        CausalProfiler::ScopedCause sc(prof, mem.profNode(),
                                       eq.now());
        wireOrder.push_back(0);
        fabric.sendFromGpu(gpu, std::move(r));
    });
}

void
GpuHub::landWrite(Packet &&pkt)
{
    Addr addr = pkt.addr;
    std::uint32_t bytes = pkt.payloadBytes;
    int contribs = pkt.contribs;
    bool need_ack = pkt.needAck;
    GpuId acker = pkt.issuerGpu;
    std::uint64_t cookie = pkt.cookie;

    mem.access(bytes,
               [this, addr, bytes, contribs, need_ack, acker, cookie] {
        // The HBM write enables tile readiness and the ack.
        CausalProfiler::ScopedCause sc(prof, mem.profNode(),
                                       eq.now());
        if (arrivals)
            arrivals->onDataArrival(gpu, addr, bytes, contribs);
        if (need_ack && acker != invalidId && acker != gpu) {
            Packet ack = newPacket(PacketType::writeAck, acker);
            ack.addr = addr;
            ack.cookie = cookie;
            wireOrder.push_back(0);
            fabric.sendFromGpu(gpu, std::move(ack));
        }
    });
}

void
GpuHub::acceptPacket(Packet &&pkt, CreditLink *from, int vc)
{
    // The GPU sinks at line rate; free the buffer slot immediately.
    from->returnCredit(vc);

    switch (pkt.type) {
      case PacketType::readReq:
        serveRead(std::move(pkt));
        return;

      case PacketType::writeReq:
      case PacketType::caisMergedWrite:
        landWrite(std::move(pkt));
        return;

      case PacketType::readResp:
      case PacketType::caisLoadResp:
      case PacketType::multimemLdReduceResp:
      case PacketType::writeAck: {
        responses.inc();
        if (pkt.type == PacketType::caisLoadResp &&
            caisLoadsOutstanding > 0) {
            --caisLoadsOutstanding;
            // Capped loads may now resume.
            eq.scheduleAfter(0, [this] { pump(); });
        }
        auto it = cookieToJob.find(pkt.cookie);
        if (it == cookieToJob.end())
            panic("hub %d: response with unknown cookie %llu", gpu,
                  static_cast<unsigned long long>(pkt.cookie));
        std::uint64_t job_id = it->second;
        cookieToJob.erase(it);
        auto jit = jobs.find(job_id);
        if (jit == jobs.end())
            panic("hub %d: response for finished job", gpu);
        --jit->second.awaitingReply;
        maybeFinish(job_id);
        return;
      }

      case PacketType::groupSyncRelease:
        if (!synchronizer)
            panic("hub %d: sync release without synchronizer", gpu);
        synchronizer->onRelease(pkt.group,
                                static_cast<SyncPhase>(pkt.cookie));
        return;

      case PacketType::throttleHint:
        pauses.inc();
        pausedGroups[pkt.group] = eq.now() + pkt.cookie;
        return;

      default:
        panic("hub %d: unexpected packet type %s", gpu,
              packetTypeName(pkt.type));
    }
}

bool
GpuHub::idle() const
{
    return jobs.empty() && issueQueue.empty() && inflightChunks == 0;
}

} // namespace cais
