#include "gpu/gpu_core.hh"

namespace cais
{

GpuCore::GpuCore(EventQueue &eq_, Fabric &fabric, GpuId id,
                 const GpuParams &params)
    : gpuId(id), p(params), eq(eq_),
      hubImpl(eq_, fabric, id, params),
      syncImpl(id), smPool(eq_, params.numSms, params.ctasPerSm),
      sched(smPool), rngImpl(params.seed + static_cast<std::uint64_t>(id))
{
    p.validate();
    hubImpl.setSynchronizer(&syncImpl);
    syncImpl.setHub(&hubImpl);
    fabric.attachGpu(id, &hubImpl);
}

TbRunContext
GpuCore::tbContext(int num_gpus)
{
    TbRunContext ctx;
    ctx.eq = &eq;
    ctx.hub = &hubImpl;
    ctx.sync = &syncImpl;
    ctx.rng = &rngImpl;
    ctx.jitterSigma = p.jitterSigma;
    ctx.numGpus = num_gpus;
    ctx.prof = prof;
    return ctx;
}

} // namespace cais
