/**
 * @file
 * HBM bandwidth model. Kernel-local traffic is folded into thread
 * block compute costs by the workload layer; this model serializes the
 * *fabric-facing* HBM work — serving remote reads and landing remote
 * writes — which is what contends with inbound/outbound NVLink
 * traffic.
 */

#ifndef CAIS_GPU_HBM_HH
#define CAIS_GPU_HBM_HH

#include "common/event_queue.hh"
#include "common/intmath.hh"
#include "common/metrics.hh"
#include "common/stats.hh"

namespace cais
{

class CausalProfiler;

/** A single bandwidth-serialized memory channel with fixed latency. */
class HbmModel : public Probe
{
  public:
    HbmModel(EventQueue &eq, double bytes_per_cycle, Cycle latency);

    /**
     * Attach the causal profiler (DESIGN.md §6g); @p node is this
     * channel's profile-graph node. access() then records an HBM
     * wait edge itself — the completion time is known at schedule
     * time — so callers' completion closures stay capture-free.
     */
    void setProfiler(CausalProfiler *pr, std::uint64_t node)
    {
        prof = pr;
        profNode_ = node;
    }

    /** This channel's profile-graph node (0 when unprofiled). */
    std::uint64_t profNode() const { return profNode_; }

    /** Schedule an access of @p bytes; @p done fires at completion. */
    void access(std::uint64_t bytes, EventQueue::Callback done);

    std::uint64_t totalBytes() const { return bytes.value(); }
    std::uint64_t totalAccesses() const { return accesses.value(); }
    Cycle busyCycles() const { return busy; }

    void
    registerMetrics(MetricRegistry &reg,
                    const std::string &prefix) const override
    {
        reg.addCounter(prefix + ".bytes", &bytes);
        reg.addCounter(prefix + ".accesses", &accesses);
        reg.addGaugeU64(prefix + ".busyCycles", [this] { return busy; });
    }

  private:
    CAIS_OWNED_BY_DOMAIN(host);

    EventQueue &eq;
    double bw;
    SerDivider serDiv;
    Cycle lat;
    Cycle busyUntil = 0;
    CausalProfiler *prof = nullptr;
    std::uint64_t profNode_ = 0;

    Counter bytes;
    Counter accesses;
    Cycle busy = 0;
};

} // namespace cais

#endif // CAIS_GPU_HBM_HH
