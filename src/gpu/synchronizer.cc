#include "gpu/synchronizer.hh"

#include "common/log.hh"
#include "gpu/hub.hh"

namespace cais
{

Synchronizer::Synchronizer(GpuId gpu_) : gpu(gpu_)
{
}

void
Synchronizer::requestSync(GroupId group, SyncPhase phase, int expected,
                          std::function<void()> released)
{
    if (!hub)
        panic("synchronizer %d: no hub attached", gpu);
    std::uint64_t k = key(group, phase);
    if (pending.count(k))
        panic("synchronizer %d: duplicate sync for group %d phase %d",
              gpu, group, static_cast<int>(phase));
    pending[k] = std::move(released);
    reqs.inc();
    hub->sendSyncReq(group, phase, expected);
}

void
Synchronizer::onRelease(GroupId group, SyncPhase phase)
{
    auto it = pending.find(key(group, phase));
    if (it == pending.end())
        panic("synchronizer %d: release for unknown group %d phase %d",
              gpu, group, static_cast<int>(phase));
    auto cb = std::move(it->second);
    pending.erase(it);
    rels.inc();
    cb();
}

} // namespace cais
