/**
 * @file
 * One GPU: SM pool, TB dispatcher, hub (fabric endpoint + HBM), TB
 * group synchronizer and a private deterministic RNG, wired together
 * and attached to the fabric.
 */

#ifndef CAIS_GPU_GPU_CORE_HH
#define CAIS_GPU_GPU_CORE_HH

#include <memory>

#include "common/rng.hh"
#include "gpu/gpu_config.hh"
#include "gpu/hub.hh"
#include "gpu/sm.hh"
#include "gpu/synchronizer.hh"
#include "gpu/tb_scheduler.hh"
#include "gpu/thread_block.hh"

namespace cais
{

/** A fully assembled GPU model. */
class GpuCore
{
  public:
    GpuCore(EventQueue &eq, Fabric &fabric, GpuId id,
            const GpuParams &params);

    GpuCore(const GpuCore &) = delete;
    GpuCore &operator=(const GpuCore &) = delete;

    GpuId id() const { return gpuId; }
    const GpuParams &params() const { return p; }

    GpuHub &hub() { return hubImpl; }
    Synchronizer &synchronizer() { return syncImpl; }
    SmPool &sms() { return smPool; }
    TbScheduler &scheduler() { return sched; }
    Rng &rng() { return rngImpl; }

    /** Context handed to thread blocks executing on this GPU. */
    TbRunContext tbContext(int num_gpus);

    /** Attach the causal profiler (DESIGN.md §6g) to this GPU's hub,
     *  HBM channel, and future TB contexts. */
    void setProfiler(CausalProfiler *pr)
    {
        prof = pr;
        hubImpl.setProfiler(pr);
    }

    /** Register every sub-component under prefix.{hub,hbm,sched,sync}. */
    void
    registerMetrics(MetricRegistry &reg, const std::string &prefix) const
    {
        hubImpl.registerMetrics(reg, prefix + ".hub");
        hubImpl.hbm().registerMetrics(reg, prefix + ".hbm");
        sched.registerMetrics(reg, prefix + ".sched");
        syncImpl.registerMetrics(reg, prefix + ".sync");
    }

  private:
    CAIS_OWNED_BY_DOMAIN(host);

    GpuId gpuId;
    GpuParams p;
    EventQueue &eq;

    GpuHub hubImpl;
    Synchronizer syncImpl;
    SmPool smPool;
    TbScheduler sched;
    Rng rngImpl;
    CausalProfiler *prof = nullptr;
};

} // namespace cais

#endif // CAIS_GPU_GPU_CORE_HH
